package mcmf

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCsparMatchesCostScalingFresh is the acceptance pin of the
// tentpole: on the 110-instance random suite, the bulk-synchronous
// "cspar" driver must reach exactly the optimal objective of the
// serial "costscaling" driver on fresh solves (per-arc flows may
// legitimately differ between the two discharge schedules — min-cost
// flows are degenerate — so each result is additionally certified by
// Verify; bit-level identity is pinned within cspar across worker
// budgets by TestConformanceWorkerBudgets).
func TestCsparMatchesCostScalingFresh(t *testing.T) {
	for seed := int64(0); seed < 110; seed++ {
		negative := seed%3 == 0
		serial := newEngineInstance(t, "costscaling", seed, negative, 1)
		want, err := serial.Solve()
		if err != nil {
			t.Fatalf("seed %d: costscaling: %v", seed, err)
		}
		for _, par := range []int{1, 4} {
			bsp := newEngineInstance(t, "cspar", seed, negative, par)
			got, err := bsp.Solve()
			if err != nil {
				t.Fatalf("seed %d par %d: cspar: %v", seed, par, err)
			}
			if got != want {
				t.Fatalf("seed %d par %d: cspar cost %v != costscaling %v", seed, par, got, want)
			}
			if err := bsp.Verify(); err != nil {
				t.Fatalf("seed %d par %d: certificate: %v", seed, par, err)
			}
		}
	}
}

// TestScalingResolveIncremental pins that the scaling engines' new
// incremental path actually engages on D-phase-shaped rounds (small
// cost-delta batches must be served by Resolves, not full fallbacks)
// and repairs to the exact fresh optimum.
func TestScalingResolveIncremental(t *testing.T) {
	for _, engine := range []string{"costscaling", "cspar"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			s := NewGridInstance(12, 10, 5)
			if err := s.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Solve(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			for round := 0; round < 6; round++ {
				changed := make([]int32, 0, 4)
				for k := 0; k < 4; k++ {
					id := rng.Intn(s.NumArcs())
					s.SetCost(id, int64(rng.Intn(1000)))
					changed = append(changed, int32(id))
				}
				got, err := s.ResolveChanged(changed)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				want, err := freshTwin(s).Solve()
				if err != nil {
					t.Fatalf("round %d: fresh: %v", round, err)
				}
				if got != want {
					t.Fatalf("round %d: resolve cost %v != fresh %v", round, got, want)
				}
				if err := s.Verify(); err != nil {
					t.Fatalf("round %d: certificate: %v", round, err)
				}
			}
			st := s.EngineStats()
			if st.Resolves == 0 {
				t.Fatalf("no incremental resolves engaged: %+v", st)
			}
		})
	}
}

// TestScalingPriceRange pins the overflow guard: an instance whose
// cost magnitude leaves no headroom for the α-scaled costs must be
// refused with ErrPriceRange by the scaling engines (instead of
// silently wrapping int64), while the SSP family still solves it —
// and the calibration probe must therefore skip the scaling candidate
// and pick an SSP engine.
func TestScalingPriceRange(t *testing.T) {
	build := func() *Solver {
		s := New(3)
		s.AddArc(0, 1, 10, int64(inf)/2) // α = 4 here, so α·cost overflows the inf budget
		s.AddArc(1, 2, 10, 1)
		s.SetSupply(0, 2)
		s.SetSupply(2, -2)
		return s
	}
	for _, engine := range []string{"costscaling", "cspar"} {
		s := build()
		if err := s.SetEngine(engine); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(); err != ErrPriceRange {
			t.Fatalf("%s on megacost instance: err=%v, want ErrPriceRange", engine, err)
		}
	}
	s := build()
	want, err := s.Solve() // default ssp handles it
	if err != nil {
		t.Fatalf("ssp on megacost instance: %v", err)
	}
	c := build()
	winner, err := c.CalibrateEngines([]string{"cspar", "ssp"})
	if err != nil {
		t.Fatalf("calibration with a refusing candidate: %v", err)
	}
	if winner != "ssp" {
		t.Fatalf("calibration winner %q, want ssp (cspar must be disqualified)", winner)
	}
	if got := c.TotalCost(); got != want {
		t.Fatalf("calibrated state cost %v != ssp reference %v", got, want)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCsparErrorRecovery pins the engine's state hygiene across a
// failed solve: a refine that aborts mid-phase (several super-steps
// in, after the active-set double buffer has ping-ponged) must leave
// the reused engine able to solve the repaired instance exactly —
// regression for an aliasing bug where the two active-set buffers
// ended up sharing one backing array after an error return.
func TestCsparErrorRecovery(t *testing.T) {
	s := New(8)
	for v := 0; v+1 < 7; v++ {
		s.AddArc(v, v+1, 100, 1)
	}
	bott := s.AddArc(6, 7, 3, 1) // bottleneck: excess crosses 6 super-steps, then traps
	s.SetSupply(0, 50)
	s.SetSupply(7, -50)
	s.SetParallelism(4)
	if err := s.SetEngine("cspar"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err == nil {
		t.Fatal("bottlenecked instance solved; want an error")
	}
	s.SetCapacity(bott, 100)
	cost, err := s.Solve()
	if err != nil {
		t.Fatalf("repaired solve on reused engine: %v", err)
	}
	want, err := freshTwin(s).Solve()
	if err != nil || cost != want {
		t.Fatalf("repaired cost %v (err %v) != fresh %v", cost, err, want)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCalibrateEngines pins the probe contract: a registered winner is
// returned and installed with a consistent solved state, unknown
// candidates fail fast, and an infeasible instance propagates the
// engines' error.
func TestCalibrateEngines(t *testing.T) {
	s := NewGridInstance(10, 8, 4)
	ref, err := freshTwin(s).Solve()
	if err != nil {
		t.Fatal(err)
	}
	winner, err := s.CalibrateEngines([]string{"dial", "ssp", "cspar"})
	if err != nil {
		t.Fatal(err)
	}
	if !ValidEngine(winner) {
		t.Fatalf("winner %q is not a registered engine", winner)
	}
	if s.EngineName() != winner {
		t.Fatalf("active engine %q != winner %q", s.EngineName(), winner)
	}
	if got := s.TotalCost(); got != ref {
		t.Fatalf("calibrated cost %v != reference %v", got, ref)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// The winner's state must keep serving warm re-solves.
	s.SetCost(0, s.Cost(0)+5)
	if _, err := s.ResolveChanged([]int32{0}); err != nil {
		t.Fatalf("resolve after calibration: %v", err)
	}

	if _, err := s.CalibrateEngines([]string{"nope"}); err == nil {
		t.Fatal("unknown candidate accepted")
	}

	bad := New(2)
	bad.SetSupply(0, 5)
	bad.SetSupply(1, -5)
	bad.AddArc(0, 1, 1, 1) // insufficient capacity
	if _, err := bad.CalibrateEngines([]string{"ssp", "dial"}); err != ErrInfeasible {
		t.Fatalf("infeasible calibration: err=%v, want ErrInfeasible", err)
	}
}

// BenchmarkCspar measures the bulk-synchronous scaling driver against
// its serial twin on the D-phase grid shape: fresh solves, warm
// re-solves and incremental resolve rounds, each at worker budgets 1
// and 4 (on a single-core host j4 measures super-step overhead, not
// speedup).  Recorded in BENCH_<date>_cspar.json and pinned by the
// cspar CI gate.
func BenchmarkCspar(b *testing.B) {
	const batch = 24
	for _, j := range []int{1, 4} {
		j := j
		b.Run(fmt.Sprintf("grid40x25/j%d/fresh", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewGridInstance(40, 25, 7)
				s.SetParallelism(j)
				if err := s.SetEngine("cspar"); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("grid40x25/j%d/warm", j), func(b *testing.B) {
			s := NewGridInstance(40, 25, 7)
			s.SetParallelism(j)
			if err := s.SetEngine("cspar"); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset()
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("grid40x25/j%d/resolve", j), func(b *testing.B) {
			s := NewGridInstance(40, 25, 7)
			s.SetParallelism(j)
			if err := s.SetEngine("cspar"); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			ids := make([]int32, 256*batch)
			costs := make([]int64, len(ids))
			for i := range ids {
				ids[i] = int32(rng.Intn(s.NumArcs()))
				costs[i] = int64(rng.Intn(1000))
			}
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
			// Warm the repair path's lazily grown scratch (Dijkstra
			// heap, visited lists) so allocs/op is iteration-count
			// independent — the CI gate compares at a different -benchtime.
			for i := 0; i < 8; i++ {
				off := (i % 256) * batch
				for k := 0; k < batch; k++ {
					s.SetCost(int(ids[off+k]), costs[off+k])
				}
				if _, err := s.ResolveChanged(ids[off : off+batch]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i % 256) * batch
				for k := 0; k < batch; k++ {
					s.SetCost(int(ids[off+k]), costs[off+k])
				}
				if _, err := s.ResolveChanged(ids[off : off+batch]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
