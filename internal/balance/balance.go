// Package balance implements delay balancing with Fictitious Specific
// Delay Units (FSDUs) and FSDU displacement (paper §2.3.1, ref [13]).
//
// A delay-balanced configuration assigns every edge e=(u,v) a
// non-negative FSDU value such that, with FSDUs counted as edge delays,
// every edge slack is zero and the critical path is unchanged.  Any
// vertex potential p with p(source)=0 and p(v) − p(u) ≥ delay(u) on
// every edge induces one:  FSDU(e) = p(v) − p(u) − delay(u).
//
// Theorem 1: all balanced configurations differ by an FSDU
// displacement r: FSDU_r(e) = FSDU(e) + r(v) − r(u).  Theorem 2: path
// delay changes by r(dst)−r(src).  Corollary 1: pinning r at the PIs
// and the sink O preserves the critical path.  These are verified by
// the package's property tests.
package balance

import (
	"fmt"

	"minflo/internal/graph"
	"minflo/internal/sta"
)

// Config is a delay-balanced configuration: one FSDU per edge plus the
// potential that generated it.
type Config struct {
	FSDU []float64 // per edge ID
	Pot  []float64 // per vertex: the balancing potential p
}

// Mode selects which potential generates the balanced configuration.
type Mode int

const (
	// ALAP uses required times (slack pushed as early as possible onto
	// input-side edges) — the depth-first heuristic of ref [13] lands on
	// this configuration.
	ALAP Mode = iota
	// ASAP uses arrival times (slack accumulates on output-side edges).
	ASAP
)

// Balance computes a delay-balanced configuration of g under vertex
// delays d and timing t.  Sources are held at potential zero.
//
// For repeated balancing over one graph (the optimizer's D/W loop),
// use a Balancer: it reuses the Config buffers across calls.
func Balance(g *graph.Digraph, d []float64, t *sta.Timing, mode Mode) (*Config, error) {
	return NewBalancer(g).Balance(d, t, mode)
}

// Balancer computes balanced configurations of a fixed graph without
// per-call allocation: the returned Config is owned by the Balancer and
// overwritten by the next Balance call.
type Balancer struct {
	g   *graph.Digraph
	cfg Config
}

// NewBalancer preallocates the configuration buffers for g.
func NewBalancer(g *graph.Digraph) *Balancer {
	return &Balancer{g: g, cfg: Config{
		FSDU: make([]float64, g.M()),
		Pot:  make([]float64, g.N()),
	}}
}

// Balance computes a delay-balanced configuration under vertex delays d
// and timing t, reusing the Balancer's buffers.
func (b *Balancer) Balance(d []float64, t *sta.Timing, mode Mode) (*Config, error) {
	g := b.g
	n := g.N()
	p := b.cfg.Pot
	for v := 0; v < n; v++ {
		switch {
		case g.InDegree(v) == 0:
			p[v] = 0 // primary inputs arrive at time zero
		case mode == ALAP:
			p[v] = t.RT[v]
		default:
			p[v] = t.AT[v]
		}
	}
	cfg := &b.cfg
	for _, e := range g.Edges() {
		f := p[e.To] - p[e.From] - d[e.From]
		if f < -1e-9 {
			return nil, fmt.Errorf("balance: negative FSDU %g on edge %d->%d (unsafe circuit?)", f, e.From, e.To)
		}
		if f < 0 {
			f = 0
		}
		cfg.FSDU[e.ID] = f
	}
	return cfg, nil
}

// Displace applies an FSDU displacement r (eq. 9), returning the new
// configuration. The caller is responsible for r being feasible
// (non-negative FSDUs afterwards); Verify checks it.
func (c *Config) Displace(g *graph.Digraph, r []float64) *Config {
	nf := make([]float64, len(c.FSDU))
	np := make([]float64, len(c.Pot))
	for i := range np {
		np[i] = c.Pot[i] + r[i]
	}
	for _, e := range g.Edges() {
		nf[e.ID] = c.FSDU[e.ID] + r[e.To] - r[e.From]
	}
	return &Config{FSDU: nf, Pot: np}
}

// Verify checks that the configuration is a legal balanced
// configuration of (g, d): FSDUs non-negative and consistent with the
// potential, and sources at potential zero.
func (c *Config) Verify(g *graph.Digraph, d []float64, eps float64) error {
	for _, e := range g.Edges() {
		f := c.FSDU[e.ID]
		if f < -eps {
			return fmt.Errorf("balance: FSDU(%d->%d) = %g < 0", e.From, e.To, f)
		}
		want := c.Pot[e.To] - c.Pot[e.From] - d[e.From]
		if diff := f - want; diff > eps || diff < -eps {
			return fmt.Errorf("balance: FSDU(%d->%d) = %g inconsistent with potential (want %g)",
				e.From, e.To, f, want)
		}
	}
	return nil
}

// PathDelay sums vertex delays and FSDUs along a vertex path
// (used by the Theorem 2 tests).
func (c *Config) PathDelay(g *graph.Digraph, d []float64, path []int) (float64, error) {
	var total float64
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		found := -1
		for _, e := range g.Out(u) {
			if g.Edge(e).To == v {
				found = e
				break
			}
		}
		if found == -1 {
			return 0, fmt.Errorf("balance: no edge %d->%d in path", u, v)
		}
		total += d[u] + c.FSDU[found]
	}
	if len(path) > 0 {
		total += d[path[len(path)-1]]
	}
	return total, nil
}
