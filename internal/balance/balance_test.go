package balance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"minflo/internal/graph"
	"minflo/internal/sta"
)

func randomDAG(rng *rand.Rand, n int) (*graph.Digraph, []float64) {
	g := graph.New(n)
	for i := 0; i < 3*n; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(u, v)
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(1 + rng.Intn(9))
	}
	// Sources have no delay contribution issues; keep as-is.
	return g, d
}

// TestPaperFigure34 exercises the delay-balancing construction the
// paper illustrates in Figures 3 and 4: after balancing, every edge is
// slack-free when FSDUs count as edge delays, and the critical path is
// unchanged.  (The figure's exact vertex values are not recoverable
// from the scanned text, so the test verifies the invariants the figure
// demonstrates on a same-shaped example: 5 primary inputs, one output,
// CP = 8.)
func TestPaperFigure34(t *testing.T) {
	g := graph.New(8)
	// PIs: 0..4 feeding a small reconvergent cone; sink vertex 7.
	d := []float64{0, 0, 0, 0, 0, 2, 0, 0}
	// Build: 5,6 internal; 7 output collector.
	g.AddEdge(0, 5)
	g.AddEdge(1, 5)
	g.AddEdge(2, 6)
	g.AddEdge(3, 6)
	g.AddEdge(4, 6)
	g.AddEdge(5, 6)
	g.AddEdge(5, 7)
	g.AddEdge(6, 7)
	d[5], d[6] = 2, 6 // CP = 2 + 6 = 8 through 5 -> 6 -> 7
	tm, err := sta.Analyze(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if tm.CP != 8 {
		t.Fatalf("CP = %g, want 8", tm.CP)
	}
	for _, mode := range []Mode{ALAP, ASAP} {
		cfg, err := Balance(g, d, tm, mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Verify(g, d, 1e-12); err != nil {
			t.Fatal(err)
		}
		// Balanced: with FSDUs as edge delays every source-to-sink path
		// has total delay equal to its endpoint potential; the critical
		// path is still 8.
		path := []int{0, 5, 6, 7}
		total, err := cfg.PathDelay(g, d, path)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(total-8) > 1e-12 {
			t.Fatalf("mode %v: balanced path delay %g, want 8", mode, total)
		}
		// The edge 5->7 short-cuts the cone; balancing must place
		// FSDU = CP − d(5) − 0 ... = potential difference.
		for _, e := range g.Edges() {
			if cfg.FSDU[e.ID] < 0 {
				t.Fatalf("negative FSDU")
			}
		}
	}
}

func TestBalanceUnsafeGraphRejected(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	d := []float64{1, 1}
	tm, _ := sta.Analyze(g, d)
	// Corrupt timing to force a negative FSDU.
	tm.RT[1] = -5
	if _, err := Balance(g, d, tm, ALAP); err == nil {
		t.Fatal("expected negative-FSDU error")
	}
}

// Theorem 1: any two delay-balanced configurations are FSDU-displaced
// versions of each other (r = difference of potentials).
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, d := randomDAG(rng, 3+rng.Intn(20))
		tm, err := sta.Analyze(g, d)
		if err != nil {
			return false
		}
		alap, err := Balance(g, d, tm, ALAP)
		if err != nil {
			return false
		}
		asap, err := Balance(g, d, tm, ASAP)
		if err != nil {
			return false
		}
		r := make([]float64, g.N())
		for v := range r {
			r[v] = alap.Pot[v] - asap.Pot[v]
		}
		disp := asap.Displace(g, r)
		for e := range disp.FSDU {
			if math.Abs(disp.FSDU[e]-alap.FSDU[e]) > 1e-9 {
				return false
			}
		}
		return disp.Verify(g, d, 1e-9) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Theorem 2: after displacement by r, the delay of any structural path
// u ⇝ v changes by exactly r(v) − r(u).
func TestQuickTheorem2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, d := randomDAG(rng, 3+rng.Intn(20))
		tm, err := sta.Analyze(g, d)
		if err != nil {
			return false
		}
		cfg, err := Balance(g, d, tm, ALAP)
		if err != nil {
			return false
		}
		// Random displacement.
		r := make([]float64, g.N())
		for v := range r {
			r[v] = float64(rng.Intn(7) - 3)
		}
		disp := cfg.Displace(g, r)
		// Random walk path.
		path := []int{rng.Intn(g.N())}
		for {
			v := path[len(path)-1]
			if g.OutDegree(v) == 0 || len(path) > 10 {
				break
			}
			e := g.Out(v)[rng.Intn(g.OutDegree(v))]
			path = append(path, g.Edge(e).To)
		}
		if len(path) < 2 {
			return true
		}
		before, err := cfg.PathDelay(g, d, path)
		if err != nil {
			return false
		}
		after, err := disp.PathDelay(g, d, path)
		if err != nil {
			return false
		}
		want := r[path[len(path)-1]] - r[path[0]]
		return math.Abs((after-before)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Corollary 1: displacement with r = 0 at sources and the sink leaves
// every source-to-sink path delay (hence the critical path) unchanged.
func TestQuickCorollary1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, d := randomDAG(rng, 3+rng.Intn(20))
		tm, err := sta.Analyze(g, d)
		if err != nil {
			return false
		}
		cfg, err := Balance(g, d, tm, ALAP)
		if err != nil {
			return false
		}
		r := make([]float64, g.N())
		for v := range r {
			if g.InDegree(v) == 0 || g.OutDegree(v) == 0 {
				r[v] = 0
			} else {
				r[v] = float64(rng.Intn(5) - 2)
			}
		}
		disp := cfg.Displace(g, r)
		// Any full source-to-sink path keeps its delay.
		path := []int{}
		for v := 0; v < g.N(); v++ {
			if g.InDegree(v) == 0 {
				path = append(path, v)
				break
			}
		}
		for {
			v := path[len(path)-1]
			if g.OutDegree(v) == 0 {
				break
			}
			e := g.Out(v)[rng.Intn(g.OutDegree(v))]
			path = append(path, g.Edge(e).To)
		}
		before, err := cfg.PathDelay(g, d, path)
		if err != nil {
			return false
		}
		after, err := disp.PathDelay(g, d, path)
		if err != nil {
			return false
		}
		return math.Abs(after-before) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: balanced configurations make every edge tight: the
// potential difference across each edge equals delay + FSDU exactly.
func TestQuickBalancedTight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, d := randomDAG(rng, 3+rng.Intn(25))
		tm, err := sta.Analyze(g, d)
		if err != nil {
			return false
		}
		for _, mode := range []Mode{ALAP, ASAP} {
			cfg, err := Balance(g, d, tm, mode)
			if err != nil {
				return false
			}
			for _, e := range g.Edges() {
				lhs := cfg.Pot[e.To] - cfg.Pot[e.From]
				rhs := d[e.From] + cfg.FSDU[e.ID]
				if math.Abs(lhs-rhs) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathDelayBadPath(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	d := []float64{1, 1, 1}
	tm, _ := sta.Analyze(g, d)
	cfg, _ := Balance(g, d, tm, ALAP)
	if _, err := cfg.PathDelay(g, d, []int{0, 2}); err == nil {
		t.Fatal("expected missing-edge error")
	}
}
