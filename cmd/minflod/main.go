// Command minflod serves warm sizing sessions over HTTP/JSON: submit
// a netlist once, then stream queries — new delay targets, what-if
// cost changes, re-sizes — answered from warm solver state by
// incremental re-flow instead of cold solves.  Netlist edits (ECOs)
// stream through the same session: extra loads, cell swaps, and
// rewires patch the resident state in place instead of resubmitting.
//
// Usage:
//
//	minflod -addr :7317
//	minflod -addr :7317 -engine ssp -mem-high 512MiB -max-pending 64
//	minflod -addr :7317 -edit-cone-budget 0.5 -edit-cone-resize
//
// Endpoints:
//
//	POST   /v1/sessions            submit a netlist → session id
//	POST   /v1/sessions/{id}/query sizing query against warm state
//	POST   /v1/sessions/{id}/edit  apply a netlist edit batch (atomic)
//	GET    /v1/sessions/{id}       session metadata
//	DELETE /v1/sessions/{id}       evict a session
//	GET    /healthz                liveness (200 while the process runs)
//	GET    /readyz                 readiness (503 while draining)
//	GET    /stats                  admission/memory/failure counters
//
// An edit batch is all-or-nothing: the whole batch validates before
// anything applies, and a rejected batch (400) leaves the session
// bit-identical to never having received it.  Value edits ("retype",
// "load") patch delay rows in place and repair arrivals over the
// edit's timing cone; "rewire", "add", and "remove" change the graph
// and rebuild the session's solver state ("add" inserts a named gate
// whose inputs may reference other adds in the same batch, "remove"
// deletes a dead gate and shifts higher indices down).  An edit whose
// cone exceeds the -edit-cone-budget fraction of the circuit drops
// the trust-region seed (the next query runs cold) and is counted in
// /stats as edit_fallbacks_total.
//
// With -edit-cone-resize, the first query after a value-only edit
// batch (inside the trust region) is answered from a cone-scoped
// subproblem against frozen boundary arrivals instead of the full
// netlist — edit→re-size latency scales with the cone.  The merged
// answer is re-timed on the whole graph; a reconciliation miss falls
// back to the full warm path (cone_resizes_total /
// cone_fallbacks_total in /stats).
//
// Overload answers 429 with Retry-After; shutdown (SIGINT/SIGTERM)
// drains in-flight work, returning best-so-far partial answers at the
// drain deadline.  See internal/serve for the full protocol,
// including the error-code taxonomy.
//
// Exit codes: 0 clean shutdown, 1 startup or serve failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"minflo"
	"minflo/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7317", "listen address")
		engine      = flag.String("engine", "ssp", "default D-phase flow engine for sessions that do not pin one: "+strings.Join(minflo.FlowEngines(), ", ")+", or auto")
		jobs        = flag.Int("j", 1, "per-solve worker budget (throughput comes from session concurrency; keep 1 unless solves are huge)")
		maxInflight = flag.Int("max-inflight", 0, "concurrently executing solves (0 = GOMAXPROCS)")
		maxPending  = flag.Int("max-pending", 64, "globally admitted-but-unfinished requests before 429")
		queueDepth  = flag.Int("queue-depth", 8, "per-session request queue before 429")
		memHigh     = flag.String("mem-high", "1GiB", "session-cache high watermark (eviction trigger), e.g. 512MiB")
		memLow      = flag.String("mem-low", "", "eviction target (default 3/4 of -mem-high)")
		drain       = flag.Duration("drain", 5*time.Second, "shutdown drain deadline; in-flight queries still running at the deadline return best-so-far partial answers")
		trustRegion = flag.Float64("trust-region", 0.05, "warm-seed queries whose target moved at most this relative amount from the session's previous answer (0 disables; answers become deterministic given session history, see internal/core)")
		editCone    = flag.Float64("edit-cone-budget", 0, "drop a session's warm seed when a netlist edit's timing cone exceeds this fraction of the circuit (0 = default 0.25, negative disables the check)")
		coneResize  = flag.Bool("edit-cone-resize", false, "answer the first in-trust-region query after a value-only edit batch from a cone-scoped subproblem against frozen boundary arrivals (requires -trust-region > 0)")
	)
	flag.Parse()
	if err := run(*addr, *engine, *jobs, *maxInflight, *maxPending, *queueDepth, *memHigh, *memLow, *drain, *trustRegion, *editCone, *coneResize); err != nil {
		fmt.Fprintln(os.Stderr, "minflod:", err)
		os.Exit(1)
	}
}

func run(addr, engine string, jobs, maxInflight, maxPending, queueDepth int, memHigh, memLow string, drain time.Duration, trustRegion, editCone float64, coneResize bool) error {
	high, err := parseBytes(memHigh)
	if err != nil {
		return fmt.Errorf("-mem-high: %w", err)
	}
	var low int64
	if memLow != "" {
		if low, err = parseBytes(memLow); err != nil {
			return fmt.Errorf("-mem-low: %w", err)
		}
	}
	srv, err := serve.New(serve.Config{
		Engine:         engine,
		Parallelism:    jobs,
		MaxInFlight:    maxInflight,
		MaxPending:     maxPending,
		QueueDepth:     queueDepth,
		MemHighBytes:   high,
		MemLowBytes:    low,
		DrainTimeout:   drain,
		TrustRegion:    trustRegion,
		EditConeBudget: editCone,
		EditConeResize: coneResize,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("minflod listening on %s (engine=%s, mem-high=%s)", addr, engine, memHigh)
		errCh <- hs.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("minflod: %s — draining (deadline %s)", sig, drain)
	}

	// Drain the session workers first (in-flight queries finish or come
	// back partial at the deadline), then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), drain+2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("minflod: drained, bye")
	return nil
}

// parseBytes reads sizes like "512MiB", "1GiB", "64MB", "1048576".
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3}, {"B", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			mult = u.mult
			t = strings.TrimSuffix(t, u.suffix)
			break
		}
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(n * float64(mult)), nil
}
