// Command minflo sizes a combinational circuit with TILOS or
// MINFLOTRANSIT.
//
// Usage:
//
//	minflo -circuit c6288 -spec 0.5                  # synthetic benchmark
//	minflo -bench path/to/c432.bench -spec 0.4       # real ISCAS85 netlist
//	minflo -circuit adder32 -spec 0.5 -algo tilos
//	minflo -circuit c17 -spec 0.6 -mode transistor
//	minflo -circuit c17 -spec 0.6 -sizes             # dump per-gate sizes
//	minflo -circuit c6288 -spec 0.5 -engine cspar    # pin the D-phase flow backend
//	minflo -circuit c6288 -spec 0.5 -budget 30s      # bounded run, best-so-far on expiry
//
// Ctrl-C cancels a running optimization gracefully: the best sizing
// reached so far is printed and the process exits with code 130.
//
// Exit codes (the single source of truth is exitCodeHelp below, also
// printed by -help): 0 success, 1 internal error, 3 infeasible target,
// 4 budget exhausted, 130 canceled.
//
// For repeated queries against the same circuit — sweeping targets,
// what-if cost changes — the minflod daemon (cmd/minflod) keeps the
// solver state warm between requests instead of re-solving cold; see
// its package documentation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"minflo"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "benchmark name (adder32, c432, c6288, ...)")
		benchFile   = flag.String("bench", "", "ISCAS85 .bench netlist file")
		spec        = flag.Float64("spec", 0.5, "delay target as a fraction of Dmin")
		algo        = flag.String("algo", "minflo", "sizing algorithm: minflo, tilos or lagrange")
		engine      = flag.String("engine", "auto", "D-phase flow engine: auto (calibrated per problem), ssp, dial, parallel, costscaling or cspar")
		jobs        = flag.Int("j", 0, "intra-run parallelism: worker budget for one sizing run (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
		budget      = flag.Duration("budget", 0, "wall-clock budget for the optimization (0 = unlimited); on expiry the best sizing so far is printed and the exit code is 4")
		mode        = flag.String("mode", "gate", "sizing mode: gate or transistor")
		dumpSizes   = flag.Bool("sizes", false, "print the per-element sizes")
		report      = flag.Bool("report", false, "print a timing report after sizing")
		sweep       = flag.Bool("sweep", false, "print the TILOS-vs-MINFLO area-delay curve instead of one point")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: minflo -circuit NAME|-bench FILE [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), exitCodeHelp)
	}
	flag.Parse()
	// First interrupt cancels the optimization (the solver unwinds at
	// its next poll point and reports best-so-far); a second interrupt
	// kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := run(ctx, *circuitName, *benchFile, *spec, *algo, *engine, *jobs, *budget, *mode, *dumpSizes, *report, *sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minflo:", err)
	}
	os.Exit(exitCode(err))
}

// exitCodeHelp is the one place the exit-code contract is written
// down; exitCode below implements it and the package doc points here.
const exitCodeHelp = `
exit codes:
  0    success
  1    internal error (bad input, solver failure)
  3    infeasible delay target (below what any sizing can reach)
  4    budget exhausted (-budget); best-so-far sizing was printed
  130  canceled by Ctrl-C; best-so-far sizing was printed

serving: for repeated queries against one circuit (target sweeps,
what-if cost changes), run the minflod daemon instead — it keeps
solver state warm between requests.  See cmd/minflod.
`

// exitCode maps the error taxonomy to distinct shell-visible codes.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, minflo.ErrCanceled):
		return 130 // conventional SIGINT exit status
	case errors.Is(err, minflo.ErrBudgetExhausted):
		return 4
	case errors.Is(err, minflo.ErrInfeasible):
		return 3
	default:
		return 1
	}
}

func run(ctx context.Context, circuitName, benchFile string, spec float64, algo, engine string, jobs int, budget time.Duration, mode string, dumpSizes, report, sweep bool) error {
	var ckt *minflo.Circuit
	var err error
	switch {
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			return err
		}
		defer f.Close()
		ckt, err = minflo.ParseBench(f, benchFile)
		if err != nil {
			return err
		}
	case circuitName != "":
		ckt, err = minflo.CircuitByName(circuitName)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -circuit or -bench (e.g. -circuit c6288)")
	}
	if spec <= 0 || spec > 1 {
		return fmt.Errorf("-spec %g must be in (0, 1]", spec)
	}

	sz, err := minflo.NewSizer(&minflo.Config{FlowEngine: engine, Parallelism: jobs, Budget: budget})
	if err != nil {
		return err
	}

	st, err := ckt.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Printf("circuit %s: %d gates, %d PIs, %d POs, %d levels, %d transistors\n",
		ckt.Name, st.Gates, st.PIs, st.POs, st.Levels, st.Transistors)

	if sweep {
		pts, err := sz.Sweep(ckt, []float64{0.4, 0.45, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9, 1.0})
		if err != nil {
			return err
		}
		minflo.WriteCurve(os.Stdout, ckt.Name, pts)
		return nil
	}

	if mode == "transistor" {
		dmin, err := sz.TransistorMinDelay(ckt)
		if err != nil {
			return err
		}
		fmt.Printf("Dmin (transistor DAG) = %.1f ps, target = %.1f ps\n", dmin, spec*dmin)
		res, err := sz.MinflotransitTransistors(ckt, spec*dmin)
		if err != nil {
			return err
		}
		fmt.Printf("TILOS area  = %.1f (Σ transistor widths)\n", res.TilosArea)
		fmt.Printf("MINFLO area = %.1f  (%.1f%% saved, %d iterations)\n",
			res.Area, 100*(1-res.Area/res.TilosArea), res.Iterations)
		fmt.Printf("CP = %.1f ps\n", res.CP)
		if dumpSizes {
			for i, l := range res.Labels {
				fmt.Printf("  %-24s %7.3f\n", l, res.Sizes[i])
			}
		}
		return nil
	}

	dmin, err := sz.MinDelay(ckt)
	if err != nil {
		return err
	}
	target := spec * dmin
	fmt.Printf("Dmin = %.1f ps, target = %.1f ps (%.2f·Dmin)\n", dmin, target, spec)

	var sizing *minflo.Sizing
	switch algo {
	case "tilos":
		sizing, err = sz.TILOS(ckt, target)
	case "lagrange":
		sizing, err = sz.LagrangianRelaxation(ckt, target)
	case "minflo":
		sizing, err = sz.MinflotransitCtx(ctx, ckt, target)
	default:
		return fmt.Errorf("unknown -algo %q (want minflo, tilos or lagrange)", algo)
	}
	if err != nil {
		if sizing != nil && sizing.Partial {
			// Cut short but not empty-handed: report the best feasible
			// sizing reached before the abort, then surface the abort
			// through the exit code.
			switch {
			case errors.Is(err, minflo.ErrCanceled):
				fmt.Println("interrupted — best sizing so far:")
			case errors.Is(err, minflo.ErrBudgetExhausted):
				fmt.Println("budget exhausted — best sizing so far:")
			}
			printSizing(ckt, sizing, algo, dumpSizes)
		}
		return err
	}

	printSizing(ckt, sizing, algo, dumpSizes)
	if report {
		fmt.Println()
		if err := sz.TimingReport(os.Stdout, ckt, target); err != nil {
			return err
		}
	}
	return nil
}

func printSizing(ckt *minflo.Circuit, sizing *minflo.Sizing, algo string, dumpSizes bool) {
	fmt.Printf("area      = %.1f (%.2f× minimum)\n", sizing.Area, sizing.Area/sizing.MinArea)
	fmt.Printf("CP        = %.1f ps\n", sizing.CP)
	if algo == "minflo" {
		fmt.Printf("TILOS ref = %.1f  → %.1f%% area saved in %d iterations\n",
			sizing.TilosArea, 100*(1-sizing.Area/sizing.TilosArea), sizing.Iterations)
	}
	if dumpSizes {
		for gi := range ckt.Gates {
			fmt.Printf("  %-24s %7.3f\n", ckt.Gates[gi].Name, ckt.Gates[gi].Size)
		}
	}
}
