// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §5 and EXPERIMENTS.md):
//
//	experiments -table1            # Table 1: area savings + CPU times
//	experiments -fig7              # Figure 7: area–delay curves (c432, c6288)
//	experiments -scaling           # §3 run-time growth across adder widths
//	experiments -iterations        # §3 iteration-count claim
//	experiments -all
//	experiments -benchdir ./iscas85 -spec 0.5   # Table-1 sweep over real .bench netlists
//
// -benchdir replaces the synthetic stand-in circuits with a directory
// of real ISCAS85 .bench files (parsed by internal/bench): every
// *.bench file in the directory becomes one table row at -spec·Dmin.
//
// -engine selects the D-phase flow backend (ssp, dial, parallel,
// costscaling, cspar — or auto, which times the candidate engines on
// each problem's first solve and keeps the winner) and -j the
// intra-run worker budget for every mode.
//
// Table 1 runs the full 12-circuit suite and takes a few minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"minflo"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "reproduce Table 1")
		fig7     = flag.Bool("fig7", false, "reproduce Figure 7 (c432 and c6288 curves)")
		scaling  = flag.Bool("scaling", false, "run-time scaling across adder sizes (§3)")
		iters    = flag.Bool("iterations", false, "iteration counts across the suite (§3)")
		lagr     = flag.Bool("lagrangian", false, "compare against the reference-[8] Lagrangian sizer")
		all      = flag.Bool("all", false, "run everything")
		quick    = flag.Bool("quick", false, "restrict Table 1 to the small circuits")
		engine   = flag.String("engine", "auto", "D-phase flow engine: auto (calibrated per problem), ssp, dial, parallel, costscaling or cspar")
		jobs     = flag.Int("j", 0, "intra-run parallelism: worker budget per sizing run (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
		benchdir = flag.String("benchdir", "", "directory of .bench netlists: run a table sweep over every *.bench file in it")
		spec     = flag.Float64("spec", 0.5, "delay spec (fraction of Dmin) for -benchdir rows")
	)
	flag.Parse()
	if *all {
		*table1, *fig7, *scaling, *iters, *lagr = true, true, true, true, true
	}
	if !*table1 && !*fig7 && !*scaling && !*iters && !*lagr && *benchdir == "" {
		flag.Usage()
		os.Exit(2)
	}
	sz, err := minflo.NewSizer(&minflo.Config{FlowEngine: *engine, Parallelism: *jobs})
	if err != nil {
		fail(err)
	}
	if *benchdir != "" {
		runBenchDir(sz, *benchdir, *spec)
	}
	if *table1 {
		runTable1(sz, *quick)
	}
	if *fig7 {
		runFig7(sz)
	}
	if *scaling {
		runScaling(sz)
	}
	if *iters {
		runIterations(sz, *quick)
	}
	if *lagr {
		runLagrangian(sz)
	}
}

// runLagrangian compares all three optimizers (§1: TILOS heuristic,
// the exact competitor [8], and MINFLOTRANSIT) on a common subset.
func runLagrangian(sz *minflo.Sizer) {
	fmt.Println("== Three-optimizer comparison (TILOS / Lagrangian [8] / MINFLOTRANSIT) ==")
	fmt.Printf("%-10s %6s %12s %12s %12s\n", "circuit", "spec", "TILOS", "Lagrangian", "MINFLO")
	for _, name := range []string{"c17", "adder32", "c432", "c880", "c1355"} {
		ckt, err := minflo.CircuitByName(name)
		if err != nil {
			fail(err)
		}
		spec := minflo.PaperSpec(name)
		dmin, err := sz.MinDelay(ckt)
		if err != nil {
			fail(err)
		}
		T := spec * dmin
		tl, err1 := sz.TILOS(ckt.Clone(), T)
		lr, err2 := sz.LagrangianRelaxation(ckt.Clone(), T)
		mf, err3 := sz.Minflotransit(ckt.Clone(), T)
		if err1 != nil || err2 != nil || err3 != nil {
			fmt.Printf("%-10s skipped (%v %v %v)\n", name, err1, err2, err3)
			continue
		}
		fmt.Printf("%-10s %6.2f %12.1f %12.1f %12.1f\n", name, spec, tl.Area, lr.Area, mf.Area)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// runBenchDir is the real-suite mode (ROADMAP "ISCAS85 ingestion"):
// every *.bench netlist in dir becomes one Table-1-style row at
// spec·Dmin, parsed with the internal/bench reader and run through the
// same parallel RunTable harness as the synthetic suite.
func runBenchDir(sz *minflo.Sizer, dir string, spec float64) {
	if _, err := benchDirTable(sz, dir, spec, os.Stdout); err != nil {
		fail(err)
	}
}

// benchDirTable is the testable core of -benchdir: it parses every
// *.bench file in dir (alphabetical), runs the table sweep at
// spec·Dmin, writes progress and the formatted table to w, and
// returns the successful rows in suite order (TestBenchDirGolden
// checks them against a checked-in golden table).  Malformed netlists
// and infeasible rows are reported to w and skipped, not fatal.
func benchDirTable(sz *minflo.Sizer, dir string, spec float64, w io.Writer) ([]*minflo.TableRow, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.bench"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.bench files in %s", dir)
	}
	sort.Strings(paths)
	fmt.Fprintf(w, "== %d netlists from %s at %.2f·Dmin ==\n", len(paths), dir, spec)
	var jobs []minflo.TableJob
	var names []string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), ".bench")
		ckt, perr := minflo.ParseBench(f, name)
		f.Close()
		if perr != nil {
			// A malformed netlist skips its row, not the whole suite.
			fmt.Fprintf(w, "%-12s parse error: %v\n", name, perr)
			continue
		}
		jobs = append(jobs, minflo.TableJob{Circuit: ckt, Spec: spec})
		names = append(names, name)
	}
	rows, errs := sz.RunTable(jobs)
	var ok []*minflo.TableRow
	for i := range rows {
		if errs[i] != nil {
			fmt.Fprintf(w, "%-12s %v\n", names[i], errs[i])
			continue
		}
		ok = append(ok, rows[i])
	}
	minflo.WriteTable(w, ok)
	fmt.Fprintln(w)
	return ok, nil
}

func runTable1(sz *minflo.Sizer, quick bool) {
	fmt.Println("== Table 1: area savings of MINFLOTRANSIT over TILOS ==")
	names := minflo.BenchmarkNames()
	if quick {
		names = []string{"adder32", "c432", "c499", "c880"}
	}
	jobs := make([]minflo.TableJob, 0, len(names))
	for _, name := range names {
		ckt, err := minflo.CircuitByName(name)
		if err != nil {
			fail(err)
		}
		jobs = append(jobs, minflo.TableJob{Circuit: ckt, Spec: minflo.PaperSpec(name)})
	}
	// Rows run concurrently (one worker per core); results keep suite order.
	got, errs := sz.RunTable(jobs)
	var rows []*minflo.TableRow
	for i, row := range got {
		if errs[i] != nil {
			fmt.Printf("%-10s %v\n", names[i], errs[i])
			continue
		}
		rows = append(rows, row)
		minflo.WriteTable(os.Stdout, rows[len(rows)-1:])
	}
	fmt.Println()
	fmt.Println("-- full table --")
	minflo.WriteTable(os.Stdout, rows)
	fmt.Println()
}

func runFig7(sz *minflo.Sizer) {
	fmt.Println("== Figure 7: comparative area-delay curves ==")
	fracs := []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.70, 0.80, 0.90, 1.00}
	for _, name := range []string{"c432", "c6288"} {
		ckt, err := minflo.CircuitByName(name)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		pts, err := sz.Sweep(ckt, fracs)
		if err != nil {
			fail(err)
		}
		minflo.WriteCurve(os.Stdout, ckt.Name, pts)
		fmt.Printf("(%s sweep took %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
}

func runScaling(sz *minflo.Sizer) {
	fmt.Println("== Run-time scaling on ripple-carry adders (§3) ==")
	fmt.Printf("%8s %8s %14s %14s %8s\n", "bits", "gates", "t(TILOS)", "t(MINFLO tot)", "ratio")
	for _, bits := range []int{16, 32, 64, 128, 256} {
		ckt, err := minflo.CircuitByName(fmt.Sprintf("adder%d", bits))
		if err != nil {
			fail(err)
		}
		row, err := sz.RunTableRow(ckt, 0.5)
		if err != nil {
			fmt.Printf("%8d %v\n", bits, err)
			continue
		}
		total := row.TilosTime + row.MinfloExtra
		fmt.Printf("%8d %8d %14v %14v %8.2f\n",
			bits, row.Gates, row.TilosTime.Round(time.Millisecond),
			total.Round(time.Millisecond), float64(total)/float64(row.TilosTime))
	}
	fmt.Println()
}

func runIterations(sz *minflo.Sizer, quick bool) {
	fmt.Println("== Iteration counts (§3: \"only a few tens of iterations\") ==")
	names := []string{"adder32", "c432", "c499", "c880"}
	if !quick {
		names = append(names, "c1355", "c2670", "c6288")
	}
	for _, name := range names {
		ckt, err := minflo.CircuitByName(name)
		if err != nil {
			fail(err)
		}
		row, err := sz.RunTableRow(ckt, minflo.PaperSpec(name))
		if err != nil {
			fmt.Printf("%-10s %v\n", name, err)
			continue
		}
		fmt.Printf("%-10s %3d iterations (saved %.1f%%)\n", name, row.Iterations, row.SavingsPct)
	}
	fmt.Println()
}
