package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"minflo"
)

var update = flag.Bool("update", false, "rewrite the golden table from the current run")

// goldenColumns formats the deterministic columns of a table row —
// everything except the wall-clock timings, which vary run to run.
// Areas and Dmin print at full float precision on purpose: the golden
// file doubles as a bit-determinism gate for the -benchdir pipeline.
func goldenColumns(rows []*minflo.TableRow) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%-10s %6s %5s %12s %14s %14s %7s %5s\n",
		"circuit", "gates", "spec", "Dmin(ps)", "TILOS", "MINFLO", "saved%", "iters")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %5.2f %12.6g %14.8g %14.8g %7.3f %5d\n",
			r.Circuit, r.Gates, r.DelaySpec, r.DminPS, r.TilosArea, r.MinfloArea,
			r.SavingsPct, r.Iterations)
	}
	return b.String()
}

// TestBenchDirGolden exercises the -benchdir pipeline end-to-end over
// the checked-in examples/iscas85 fixture set: parse every .bench
// file, size each netlist at 0.5·Dmin, and compare the resulting
// table against testdata/benchdir_golden.txt (refresh with
// `go test ./cmd/experiments -run TestBenchDirGolden -update`).  The
// sweep runs twice — serial and at parallelism 4 — and both must
// produce the identical golden table, tying the fixture suite into
// the intra-run determinism contract.
func TestBenchDirGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "iscas85")
	goldenPath := filepath.Join("testdata", "benchdir_golden.txt")

	var tables []string
	for _, par := range []int{1, 4} {
		// The flow engine is pinned: the golden table records one exact
		// trajectory, and the default auto policy now calibrates by
		// timing candidate engines per problem — equally optimal, but
		// free to land on a different (bitwise different) optimum
		// between runs.
		sz, err := minflo.NewSizer(&minflo.Config{FlowEngine: "dial", Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		rows, err := benchDirTable(sz, dir, 0.5, &out)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(rows) != 4 {
			t.Fatalf("parallelism %d: %d rows (output:\n%s)", par, len(rows), out.String())
		}
		tables = append(tables, goldenColumns(rows))
	}
	if tables[0] != tables[1] {
		t.Fatalf("serial and parallel -benchdir tables differ:\nserial:\n%sparallel:\n%s", tables[0], tables[1])
	}

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(tables[0]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to record the golden table)", err)
	}
	if string(want) != tables[0] {
		t.Fatalf("-benchdir table drifted from golden:\ngot:\n%swant:\n%s", tables[0], string(want))
	}
}
