// Command mkbench writes the synthetic benchmark suite to .bench files
// so the circuits can be inspected or consumed by other EDA tools, and
// records benchmark-regression snapshots:
//
//	mkbench -dir ./benchmarks
//	mkbench -snapshot -note "post flow-engine overhaul"
//
// In -snapshot mode it runs `go test -run=^$ -bench=<regex> -benchmem`
// on the module root package, parses the output, and writes a dated
// BENCH_<date>.json (see internal/benchsnap and EXPERIMENTS.md).  Committed
// snapshots give every future perf PR a recorded before/after baseline.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"minflo"
	"minflo/internal/benchsnap"
)

func main() {
	dir := flag.String("dir", "benchmarks", "output directory for .bench files")
	snapshot := flag.Bool("snapshot", false, "record a benchmark snapshot instead of writing .bench files")
	benchRe := flag.String("bench", "BenchmarkMCMF|BenchmarkSTA$|BenchmarkTable1", "benchmark regex for -snapshot")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value for -snapshot")
	pkg := flag.String("pkg", ".", "package to benchmark for -snapshot (run from the module root)")
	out := flag.String("out", "", "snapshot output path (default BENCH_<date>.json)")
	note := flag.String("note", "", "free-form note stored in the snapshot")
	flag.Parse()

	if *snapshot {
		if err := writeSnapshot(*benchRe, *benchtime, *pkg, *out, *note); err != nil {
			fail(err)
		}
		return
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fail(err)
	}
	names := append(minflo.BenchmarkNames(), "c17")
	for _, name := range names {
		ckt, err := minflo.CircuitByName(name)
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*dir, name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := minflo.WriteBench(f, ckt); err != nil {
			f.Close()
			fail(fmt.Errorf("%s: %w", name, err))
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		st, _ := ckt.ComputeStats()
		fmt.Printf("wrote %-24s (%d gates)\n", path, st.Gates)
	}
}

// writeSnapshot runs the benchmarks and records the parsed results.
func writeSnapshot(benchRe, benchtime, pkg, out, note string) error {
	date := time.Now().Format("2006-01-02")
	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+benchRe,
		"-benchmem", "-benchtime="+benchtime, pkg)
	var stdout bytes.Buffer
	cmd.Stdout = io.MultiWriter(&stdout, os.Stderr) // live progress + capture
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchmark run failed: %w", err)
	}
	results, err := benchsnap.ParseBenchOutput(&stdout)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched -bench=%s", benchRe)
	}
	snap := &benchsnap.Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		Note:      note,
		Results:   results,
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(results))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mkbench:", err)
	os.Exit(1)
}
