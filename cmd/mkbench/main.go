// Command mkbench writes the synthetic benchmark suite to .bench files
// so the circuits can be inspected or consumed by other EDA tools,
// records benchmark-regression snapshots, and diffs them:
//
//	mkbench -dir ./benchmarks
//	mkbench -snapshot -note "post flow-engine overhaul"
//	mkbench -compare old.json new.json            # exit 1 on >15% regressions
//	mkbench -compare -threshold 50 old.json new.json
//
// In -snapshot mode it runs `go test -run=^$ -bench=<regex> -benchmem`
// on the module root package, parses the output, and writes a dated
// BENCH_<date>.json (see internal/benchsnap and EXPERIMENTS.md).  Committed
// snapshots give every future perf PR a recorded before/after baseline.
//
// In -compare mode it prints per-benchmark ns/op and allocs/op deltas
// between two snapshots and exits non-zero when any benchmark regressed
// — more than -threshold percent on ns/op, or more than the fixed
// benchsnap.AllocThresholdPct on the hardware-independent allocs/op
// (0 allocs/op guarantees are protected at any threshold).  A baseline
// benchmark missing from the new snapshot is reported as a
// per-benchmark error and fails the gate too (pass -allow-missing when
// diffing intentionally disjoint snapshots).  This is the CI
// regression gate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"minflo"
	"minflo/internal/benchsnap"
)

func main() {
	dir := flag.String("dir", "benchmarks", "output directory for .bench files")
	snapshot := flag.Bool("snapshot", false, "record a benchmark snapshot instead of writing .bench files")
	benchRe := flag.String("bench", "BenchmarkMCMF|BenchmarkSTA$|BenchmarkTable1", "benchmark regex for -snapshot")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value for -snapshot")
	pkg := flag.String("pkg", ".", "package to benchmark for -snapshot (run from the module root)")
	out := flag.String("out", "", "snapshot output path (default BENCH_<date>.json)")
	note := flag.String("note", "", "free-form note stored in the snapshot")
	compare := flag.Bool("compare", false, "compare two snapshots: mkbench -compare old.json new.json")
	threshold := flag.Float64("threshold", 15, "ns/op regression threshold in percent for -compare (allocs/op uses a fixed tight threshold)")
	allowMissing := flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the new snapshot (default: each is a per-benchmark error)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("-compare needs exactly two snapshot paths, got %d", flag.NArg()))
		}
		regressions, err := compareSnapshots(flag.Arg(0), flag.Arg(1), *threshold, *allowMissing)
		if err != nil {
			fail(err)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *snapshot {
		if err := writeSnapshot(*benchRe, *benchtime, *pkg, *out, *note); err != nil {
			fail(err)
		}
		return
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fail(err)
	}
	names := append(minflo.BenchmarkNames(), "c17")
	for _, name := range names {
		ckt, err := minflo.CircuitByName(name)
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*dir, name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := minflo.WriteBench(f, ckt); err != nil {
			f.Close()
			fail(fmt.Errorf("%s: %w", name, err))
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		st, _ := ckt.ComputeStats()
		fmt.Printf("wrote %-24s (%d gates)\n", path, st.Gates)
	}
}

// writeSnapshot runs the benchmarks and records the parsed results.
func writeSnapshot(benchRe, benchtime, pkg, out, note string) error {
	date := time.Now().Format("2006-01-02")
	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+benchRe,
		"-benchmem", "-benchtime="+benchtime, pkg)
	var stdout bytes.Buffer
	cmd.Stdout = io.MultiWriter(&stdout, os.Stderr) // live progress + capture
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchmark run failed: %w", err)
	}
	results, err := benchsnap.ParseBenchOutput(&stdout)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched -bench=%s", benchRe)
	}
	snap := &benchsnap.Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		Note:      note,
		Results:   results,
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(results))
	return nil
}

// compareSnapshots diffs two snapshot files and prints the delta table;
// the returned count is the number of failures (>threshold%
// regressions, plus baseline benchmarks missing from the new snapshot
// unless -allow-missing).
func compareSnapshots(oldPath, newPath string, threshold float64, allowMissing bool) (int, error) {
	readSnap := func(path string) (*benchsnap.Snapshot, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return benchsnap.ReadSnapshot(f)
	}
	oldSnap, err := readSnap(oldPath)
	if err != nil {
		return 0, fmt.Errorf("old snapshot: %w", err)
	}
	newSnap, err := readSnap(newPath)
	if err != nil {
		return 0, fmt.Errorf("new snapshot: %w", err)
	}
	fmt.Printf("comparing %s (%s) -> %s (%s), threshold %.0f%%\n",
		oldPath, oldSnap.Date, newPath, newSnap.Date, threshold)
	regressions := benchsnap.WriteComparison(os.Stdout, oldSnap, newSnap, threshold, allowMissing)
	fmt.Printf("geomean ns/op ratio: %.3f\n", benchsnap.GeoMeanNsRatio(oldSnap, newSnap))
	return regressions, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mkbench:", err)
	os.Exit(1)
}
