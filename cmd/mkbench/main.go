// Command mkbench writes the synthetic benchmark suite to .bench files
// so the circuits can be inspected or consumed by other EDA tools.
//
//	mkbench -dir ./benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"minflo"
)

func main() {
	dir := flag.String("dir", "benchmarks", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fail(err)
	}
	names := append(minflo.BenchmarkNames(), "c17")
	for _, name := range names {
		ckt, err := minflo.CircuitByName(name)
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*dir, name+".bench")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := minflo.WriteBench(f, ckt); err != nil {
			f.Close()
			fail(fmt.Errorf("%s: %w", name, err))
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		st, _ := ckt.ComputeStats()
		fmt.Printf("wrote %-24s (%d gates)\n", path, st.Gates)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mkbench:", err)
	os.Exit(1)
}
