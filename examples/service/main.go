// Service walkthrough: run a minflod server in-process, submit a
// circuit once, then stream queries against the warm session — a
// target sweep, a what-if cost change, a budgeted query — through the
// retrying client.  The same flow works against a standalone daemon
// (`go run minflo/cmd/minflod`), pointing the client at its address.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"minflo/internal/serve"
)

func main() {
	// An in-process server; production runs cmd/minflod instead.
	srv, err := serve.New(serve.Config{Engine: "ssp"})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	ctx := context.Background()
	client := serve.NewClient(hs.URL, nil)

	// Submit once: the daemon builds the sizing problem, the timing
	// analyzer, and the flow network, and keeps them warm.
	sub, err := client.Submit(ctx, &serve.SubmitRequest{ID: "demo", Circuit: "adder16"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s: %d gates, Dmin = %.0f ps, ~%d KiB warm state\n\n",
		sub.ID, sub.NumGates, sub.MinDelayPS, sub.MemBytes/1024)

	// Stream a target sweep.  The first query solves cold; every later
	// one reuses the warm flow state via incremental re-flow.
	for _, spec := range []float64{0.7, 0.6, 0.5, 0.55} {
		q, err := client.Query(ctx, "demo", &serve.QueryRequest{TargetPS: spec * sub.MinDelayPS})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("target %.2f·Dmin: area %8.1f, CP %7.1f ps, %2d iterations (warm=%v)\n",
			spec, q.Area, q.CPPS, q.Iterations, q.Warm)
	}

	// What-if: make gate 0 ten times as expensive and re-ask.  The
	// override sticks for the rest of the session generation.
	q, err := client.Query(ctx, "demo", &serve.QueryRequest{
		TargetPS:    0.6 * sub.MinDelayPS,
		AreaWeights: []serve.AreaWeight{{Gate: 0, Weight: 10}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat-if (gate 0 at 10× cost): area %.1f at CP %.1f ps\n", q.Area, q.CPPS)

	// A budgeted query: cap the wall clock; if it expires the answer
	// comes back marked partial with the best sizing reached so far.
	q, err = client.Query(ctx, "demo", &serve.QueryRequest{
		TargetPS: 0.5 * sub.MinDelayPS,
		BudgetMS: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	if q.Error != nil {
		fmt.Printf("budgeted query stopped early (%s): partial area %.1f\n", q.Error.Code, q.Area)
	} else {
		fmt.Printf("budgeted query finished in time: area %.1f\n", q.Area)
	}

	// Server-side counters, then a graceful drain.
	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstats: %d session(s), %d queries, %d KiB cached\n",
		st.Sessions, st.Queries, st.MemBytes/1024)

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
