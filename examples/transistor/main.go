// True transistor sizing (paper §2.1–2.2): every device is its own
// sizing variable on the per-transistor DAG — pull-down chains get
// independent tapering, pull-up networks are sized separately for rise
// and fall transitions.
package main

import (
	"fmt"
	"log"
	"sort"

	"minflo"
)

func main() {
	ckt := minflo.C17()
	sz, err := minflo.NewSizer(nil)
	if err != nil {
		log.Fatal(err)
	}
	dmin, err := sz.TransistorMinDelay(ckt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("c17 transistor DAG: 24 devices, Dmin = %.0f ps\n", dmin)

	target := 0.55 * dmin
	res, err := sz.MinflotransitTransistors(ckt, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %.0f ps: TILOS Σx = %.1f → MINFLOTRANSIT Σx = %.1f (%.1f%% saved)\n\n",
		target, res.TilosArea, res.Area, 100*(1-res.Area/res.TilosArea))

	// Show the devices sorted by size: the sized-up ones are on the
	// critical discharge paths.
	type dev struct {
		label string
		size  float64
	}
	devs := make([]dev, len(res.Sizes))
	for i := range res.Sizes {
		devs[i] = dev{res.Labels[i], res.Sizes[i]}
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].size > devs[j].size })
	fmt.Println("largest devices (gate.n = NMOS, gate.p = PMOS):")
	for _, d := range devs[:8] {
		fmt.Printf("  %-12s %6.2f\n", d.label, d.size)
	}
	fmt.Println("\nNote the asymmetry between N and P devices of the same gate —")
	fmt.Println("rise and fall paths are budgeted independently (paper §2.1).")
}
