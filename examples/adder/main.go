// Adder sizing across the delay spectrum: reproduces the paper's
// observation (§3) that ripple-carry adders — one dominant critical
// path — gain almost nothing from global budget redistribution, because
// the greedy baseline already sizes the single carry chain near-optimally.
package main

import (
	"fmt"
	"log"

	"minflo"
)

func main() {
	sz, err := minflo.NewSizer(nil)
	if err != nil {
		log.Fatal(err)
	}

	for _, bits := range []int{16, 32} {
		ckt := minflo.RippleAdder(bits, minflo.FABuffered)
		dmin, err := sz.MinDelay(ckt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("adder%d: %d gates, Dmin = %.0f ps\n", bits, ckt.NumGates(), dmin)
		fmt.Printf("%6s %14s %14s %8s\n", "spec", "TILOS ratio", "MINFLO ratio", "saved")
		pts, err := sz.Sweep(ckt, []float64{0.9, 0.7, 0.5})
		if err != nil {
			log.Fatal(err)
		}
		for _, pt := range pts {
			if !pt.Feasible {
				fmt.Printf("%6.2f     infeasible\n", pt.Frac)
				continue
			}
			fmt.Printf("%6.2f %14.3f %14.3f %7.1f%%\n",
				pt.Frac, pt.TilosRatio, pt.MinfloRatio,
				100*(1-pt.MinfloRatio/pt.TilosRatio))
		}
		fmt.Println()
	}
	fmt.Println("Compare with examples/multiplier: heavy path reconvergence is")
	fmt.Println("where the min-cost-flow budget redistribution earns its keep.")
}
