// ECO walkthrough: edit a netlist inside a warm sizing session
// instead of resubmitting it.  The flow below submits an adder once,
// sizes it, then streams engineering change orders — an extra fixed
// load on a net, a cell swap, a fanout rewire — through POST
// /v1/sessions/{id}/edit.  Value edits patch the resident coupling
// rows in place and repair arrivals over the edit's timing cone; a
// structural rewire rebuilds the D-phase state; either way the next
// query answers from the edited netlist without a resubmit, and a
// rejected batch leaves the session bit-identical to never having
// received it.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"minflo/internal/serve"
)

func main() {
	srv, err := serve.New(serve.Config{Engine: "ssp", TrustRegion: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	ctx := context.Background()
	client := serve.NewClient(hs.URL, nil)

	sub, err := client.Submit(ctx, &serve.SubmitRequest{ID: "eco", Circuit: "adder16"})
	if err != nil {
		log.Fatal(err)
	}
	T := 0.6 * sub.MinDelayPS
	fmt.Printf("session %s: %d gates, Dmin = %.0f ps\n\n", sub.ID, sub.NumGates, sub.MinDelayPS)

	q, err := client.Query(ctx, "eco", &serve.QueryRequest{TargetPS: T})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline sizing:            area %8.1f, CP %7.1f ps, %2d iterations\n",
		q.Area, q.CPPS, q.Iterations)

	// ECO 1 (value edit): the place-and-route tool reports 20 fF of
	// extra wire load on a near-output net.  The edit patches the
	// resident delay rows — note the cone: only the gates downstream of
	// the edit can move, and only their arrivals are repaired.
	er, err := client.Edit(ctx, "eco", &serve.EditRequest{Edits: []serve.EditOp{
		{Op: "load", Gate: sub.NumGates - 1, LoadFF: 20},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neco 1: +20 fF load          cone %d/%d gates (%.1f%%), rebuilt=%v, seed kept=%v\n",
		er.ConeGates, sub.NumGates, 100*er.ConeFrac, er.Rebuilt, er.SeedKept)
	q, err = client.Query(ctx, "eco", &serve.QueryRequest{TargetPS: T})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-sized after eco 1:       area %8.1f, CP %7.1f ps, %2d iterations (seed %q)\n",
		q.Area, q.CPPS, q.Iterations, q.Seed)

	// ECO 2 (batch, atomic): clear the load again and swap a cell —
	// adder16's output gates are single-input buffers, so BUF→INV is
	// the legal drive swap here.  Batches validate as a whole: if any
	// entry is bad, nothing applies (try "NAND9" to see the 400).
	er, err = client.Edit(ctx, "eco", &serve.EditRequest{Edits: []serve.EditOp{
		{Op: "load", Gate: sub.NumGates - 1, LoadFF: 0},
		{Op: "retype", Gate: sub.NumGates - 1, Cell: "INV"},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neco 2: unload + retype      %d rows patched, CP now %.1f ps at current sizes\n",
		er.ChangedRows, er.CPPS)

	// ECO 3 (structural): a rewire is a DAG change — when accepted, the
	// daemon rebuilds the D-phase solver state for this session (still
	// no resubmit).  On this netlist the output buffer's driver has no
	// other fanout, so the edit is *rejected* instead: the daemon
	// refuses to leave a gate driving nothing, and because batches are
	// atomic the session state is untouched — which is the other half
	// of the contract worth seeing.
	er, err = client.Edit(ctx, "eco", &serve.EditRequest{Edits: []serve.EditOp{
		{Op: "rewire", Gate: sub.NumGates - 1, Pin: 0, Driver: "a0"},
	}})
	if err != nil {
		fmt.Printf("\neco 3: rewire rejected (%v) — batches are atomic, nothing changed\n", err)
	} else {
		fmt.Printf("\neco 3: rewire               structural=%v rebuilt=%v\n", er.Structural, er.Rebuilt)
	}

	q, err = client.Query(ctx, "eco", &serve.QueryRequest{TargetPS: T})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final sizing:               area %8.1f, CP %7.1f ps\n", q.Area, q.CPPS)

	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver: %d edit batches accepted, %d cone-budget fallbacks\n",
		st.Edits, st.EditFallbacks)
}
