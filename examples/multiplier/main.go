// Multiplier sizing: the c6288-class array multiplier is the paper's
// showcase (§3): many reconvergent near-critical paths make the greedy
// baseline thrash, while the D-phase redistributes slack globally.
// This example sweeps an 8×8 array multiplier and prints the
// Figure-7-style area-delay curve.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"minflo"
)

func main() {
	ckt := minflo.ArrayMultiplier(8)
	sz, err := minflo.NewSizer(nil)
	if err != nil {
		log.Fatal(err)
	}
	st, err := ckt.ComputeStats()
	if err != nil {
		log.Fatal(err)
	}
	dmin, err := sz.MinDelay(ckt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mult8x8: %d gates, %d logic levels, Dmin = %.0f ps\n\n",
		st.Gates, st.Levels, dmin)

	t0 := time.Now()
	pts, err := sz.Sweep(ckt, []float64{0.45, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	minflo.WriteCurve(os.Stdout, ckt.Name, pts)
	fmt.Printf("\nsweep took %v\n", time.Since(t0).Round(time.Millisecond))

	// Pick the steepest point and report details.
	res, err := sz.Minflotransit(ckt, 0.5*dmin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat 0.5·Dmin: TILOS %.0f → MINFLOTRANSIT %.0f (%.1f%% saved, %d iterations)\n",
		res.TilosArea, res.Area, 100*(1-res.Area/res.TilosArea), res.Iterations)
}
