// Quickstart: build a circuit with the public API, measure its
// minimum-size delay, and size it to half that delay with both TILOS
// and MINFLOTRANSIT.
package main

import (
	"fmt"
	"log"

	"minflo"
)

func main() {
	// A 4-bit ripple-carry adder from the generator library.
	ckt := minflo.RippleAdder(4, minflo.FAXor)

	sz, err := minflo.NewSizer(nil) // default 0.13 µm-class technology
	if err != nil {
		log.Fatal(err)
	}

	dmin, err := sz.MinDelay(ckt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adder4: %d gates, Dmin = %.0f ps\n", ckt.NumGates(), dmin)

	target := 0.5 * dmin
	fmt.Printf("target: %.0f ps (0.5·Dmin)\n\n", target)

	// Baseline: the TILOS greedy heuristic.
	tilos, err := sz.TILOS(ckt.Clone(), target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TILOS:          area %7.1f (%.2f× min), CP %.0f ps\n",
		tilos.Area, tilos.Area/tilos.MinArea, tilos.CP)

	// MINFLOTRANSIT: TILOS start + min-cost-flow budget redistribution.
	res, err := sz.Minflotransit(ckt, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MINFLOTRANSIT:  area %7.1f (%.2f× min), CP %.0f ps, %d iterations\n",
		res.Area, res.Area/res.MinArea, res.CP, res.Iterations)
	fmt.Printf("\narea saved vs TILOS: %.1f%%\n", 100*(1-res.Area/res.TilosArea))

	// The circuit now carries the optimized sizes.
	fmt.Println("\nfirst few gate sizes:")
	for gi := 0; gi < 6 && gi < ckt.NumGates(); gi++ {
		fmt.Printf("  %-8s %6.2f\n", ckt.Gates[gi].Name, ckt.Gates[gi].Size)
	}
}
