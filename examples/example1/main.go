// Example 1 from the paper (§2.4, Figure 6): a gate A fans out to two
// gates B and C.  TILOS, being greedy, keeps bumping whichever of B or
// C is most "sensitive"; sizing A — which speeds BOTH critical paths at
// once — can be the better global move.  MINFLOTRANSIT's D-phase sees
// this through the flow formulation.
package main

import (
	"fmt"
	"log"

	"minflo"
)

func main() {
	ckt := minflo.Fork()
	sz, err := minflo.NewSizer(nil)
	if err != nil {
		log.Fatal(err)
	}
	dmin, err := sz.MinDelay(ckt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fork circuit (A -> B, A -> C): Dmin = %.0f ps\n\n", dmin)
	fmt.Printf("%6s %12s %12s %9s %8s %8s %8s\n",
		"spec", "TILOS area", "MINFLO area", "saved", "x(A)", "x(B)", "x(C)")

	for _, frac := range []float64{0.9, 0.8, 0.7, 0.6} {
		c := ckt.Clone()
		res, err := sz.Minflotransit(c, frac*dmin)
		if err != nil {
			fmt.Printf("%6.2f infeasible\n", frac)
			continue
		}
		var xa, xb, xc float64
		for gi := range c.Gates {
			switch c.Gates[gi].Name {
			case "A":
				xa = c.Gates[gi].Size
			case "B":
				xb = c.Gates[gi].Size
			case "C":
				xc = c.Gates[gi].Size
			}
		}
		fmt.Printf("%6.2f %12.1f %12.1f %8.1f%% %8.2f %8.2f %8.2f\n",
			frac, res.TilosArea, res.Area, 100*(1-res.Area/res.TilosArea), xa, xb, xc)
	}
	fmt.Println("\nMINFLOTRANSIT redistributes delay budgets globally; the greedy")
	fmt.Println("baseline can only react to one critical path at a time.")
}
