// Joint gate + wire sizing (paper §2.1): every gate→gate connection is
// modelled as a sizable wire vertex in the same DAG.  Widening a wire
// lowers its resistance (faster wire stage) but adds capacitance to its
// driver — the same simple-monotonic trade-off as transistor sizing, so
// the identical D-phase/W-phase machinery optimizes both at once.
package main

import (
	"fmt"
	"log"
	"sort"

	"minflo"
)

func main() {
	ckt := minflo.RippleAdder(8, minflo.FAXor)
	sz, err := minflo.NewSizer(nil)
	if err != nil {
		log.Fatal(err)
	}
	wp := minflo.DefaultWireParams()
	dmin, err := sz.WiredMinDelay(ckt, wp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adder8 with sizable wires: Dmin = %.0f ps\n", dmin)

	target := 0.55 * dmin
	res, err := sz.MinflotransitWithWires(ckt, target, wp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %.0f ps: TILOS area %.1f → MINFLOTRANSIT %.1f (%.1f%% saved, %d iters)\n\n",
		target, res.TilosArea, res.Area, 100*(1-res.Area/res.TilosArea), res.Iterations)

	type wire struct {
		label string
		width float64
	}
	ws := make([]wire, len(res.WireWidths))
	for i := range ws {
		ws[i] = wire{res.WireLabels[i], res.WireWidths[i]}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].width > ws[j].width })
	fmt.Println("widest wires (the carry chain, as expected):")
	for _, w := range ws[:6] {
		fmt.Printf("  %-28s %6.2f\n", w.label, w.width)
	}
	widened := 0
	for _, w := range res.WireWidths {
		if w > 1.001 {
			widened++
		}
	}
	fmt.Printf("\n%d of %d wires widened above minimum\n", widened, len(res.WireWidths))
}
