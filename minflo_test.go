package minflo

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	ckt := C17()
	sz, err := NewSizer(nil)
	if err != nil {
		t.Fatal(err)
	}
	dmin, err := sz.MinDelay(ckt)
	if err != nil {
		t.Fatal(err)
	}
	if dmin <= 0 {
		t.Fatal("non-positive Dmin")
	}
	res, err := sz.Minflotransit(ckt, 0.5*dmin)
	if err != nil {
		t.Fatal(err)
	}
	if res.CP > 0.5*dmin*(1+1e-9) {
		t.Fatalf("CP %g misses target", res.CP)
	}
	if res.Area > res.TilosArea {
		t.Fatal("worse than TILOS")
	}
	// Sizes must have been written back to the circuit.
	cpNow, err := sz.Delay(ckt)
	if err != nil {
		t.Fatal(err)
	}
	if cpNow != res.CP {
		t.Fatalf("circuit sizes not applied: Delay()=%g, result CP=%g", cpNow, res.CP)
	}
}

func TestTILOSPublicAPI(t *testing.T) {
	ckt := InverterChain(10)
	sz, _ := NewSizer(nil)
	dmin, _ := sz.MinDelay(ckt)
	res, err := sz.TILOS(ckt, 0.7*dmin)
	if err != nil {
		t.Fatal(err)
	}
	if res.CP > 0.7*dmin {
		t.Fatal("TILOS missed target")
	}
	if res.MinArea <= 0 || res.Area < res.MinArea {
		t.Fatalf("area accounting wrong: %g vs min %g", res.Area, res.MinArea)
	}
}

func TestInfeasibleSurfacesTypedError(t *testing.T) {
	ckt := InverterChain(10)
	sz, _ := NewSizer(nil)
	dmin, _ := sz.MinDelay(ckt)
	_, err := sz.Minflotransit(ckt, dmin/1000)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable-target error, got %v", err)
	}
}

func TestSweepShape(t *testing.T) {
	ckt := C17()
	sz, _ := NewSizer(nil)
	pts, err := sz.Sweep(ckt, []float64{1.0, 0.8, 0.6, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for i, pt := range pts {
		if !pt.Feasible {
			continue
		}
		if pt.MinfloRatio > pt.TilosRatio*(1+1e-9) {
			t.Errorf("point %d: MINFLO ratio %g above TILOS %g", i, pt.MinfloRatio, pt.TilosRatio)
		}
		if pt.MinfloRatio < 1-1e-9 {
			t.Errorf("point %d: area ratio %g below 1", i, pt.MinfloRatio)
		}
	}
	// Monotone shape: tighter specs cannot take less area.
	for i := 1; i < len(pts); i++ {
		if pts[i].Feasible && pts[i-1].Feasible &&
			pts[i].MinfloRatio < pts[i-1].MinfloRatio-1e-6 {
			t.Errorf("area-delay curve not monotone at point %d", i)
		}
	}
}

func TestRunTableRow(t *testing.T) {
	ckt := RippleAdder(8, FAXor)
	sz, _ := NewSizer(nil)
	row, err := sz.RunTableRow(ckt, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if row.Gates != ckt.NumGates() || row.Circuit != ckt.Name {
		t.Fatalf("row identity wrong: %+v", row)
	}
	if row.SavingsPct < -1e-6 {
		t.Fatalf("negative savings %g", row.SavingsPct)
	}
	if row.AreaRatio < 1 {
		t.Fatalf("area ratio %g below 1", row.AreaRatio)
	}
}

func TestTransistorLevelPublicAPI(t *testing.T) {
	ckt := C17()
	sz, _ := NewSizer(nil)
	dmin, err := sz.TransistorMinDelay(ckt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sz.MinflotransitTransistors(ckt, 0.6*dmin)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) != 24 || len(res.Labels) != 24 {
		t.Fatalf("c17 has 24 devices, got %d", len(res.Sizes))
	}
	if res.Area > res.TilosArea {
		t.Fatal("transistor MINFLO worse than TILOS")
	}
}

func TestWireSizingPublicAPI(t *testing.T) {
	ckt := C17()
	sz, _ := NewSizer(nil)
	wp := DefaultWireParams()
	dmin, err := sz.WiredMinDelay(ckt, wp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sz.MinflotransitWithWires(ckt, 0.6*dmin, wp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GateSizes) != 6 {
		t.Fatalf("gate sizes %d", len(res.GateSizes))
	}
	if len(res.WireWidths) != len(res.WireLabels) {
		t.Fatal("wire arrays inconsistent")
	}
	if res.Area > res.TilosArea {
		t.Fatal("wired MINFLO worse than TILOS")
	}
	// At least one wire should have been widened above minimum when the
	// spec is tight... not guaranteed; only check bounds.
	for _, w := range res.WireWidths {
		if w < 1-1e-9 {
			t.Fatalf("wire width %g below minimum", w)
		}
	}
}

func TestBenchIO(t *testing.T) {
	ckt := C17()
	var buf bytes.Buffer
	if err := WriteBench(&buf, ckt); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench(&buf, "c17back")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != ckt.NumGates() {
		t.Fatal("round trip lost gates")
	}
}

func TestCircuitBuilderAPI(t *testing.T) {
	c := NewCircuit("mine")
	a := c.AddPI("a")
	b := c.AddPI("b")
	g := c.AddGate("g", Nand2, a, b)
	c.MarkPO(g)
	sz, _ := NewSizer(&Config{Tech: Default013(), TilosBump: 1.2, Window: 0.15})
	dmin, err := sz.MinDelay(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sz.Minflotransit(c, 0.8*dmin); err != nil {
		t.Fatal(err)
	}
}

func TestNewSizerRejectsBadTech(t *testing.T) {
	bad := Default013()
	bad.RUnit = -1
	if _, err := NewSizer(&Config{Tech: bad}); err == nil {
		t.Fatal("invalid tech accepted")
	}
}
