package minflo_test

import (
	"fmt"
	"log"
	"strings"

	"minflo"
)

// ExampleSizer_Minflotransit sizes the six-gate c17 circuit to half its
// minimum-size delay and reports the improvement over TILOS.
func ExampleSizer_Minflotransit() {
	ckt := minflo.C17()
	sz, err := minflo.NewSizer(nil)
	if err != nil {
		log.Fatal(err)
	}
	dmin, err := sz.MinDelay(ckt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sz.Minflotransit(ckt, 0.5*dmin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target met: %v\n", res.CP <= 0.5*dmin)
	fmt.Printf("at least as good as TILOS: %v\n", res.Area <= res.TilosArea)
	// Output:
	// target met: true
	// at least as good as TILOS: true
}

// ExampleNewCircuit builds a tiny netlist by hand and simulates it.
func ExampleNewCircuit() {
	c := minflo.NewCircuit("half-adder")
	a := c.AddPI("a")
	b := c.AddPI("b")
	sum := c.AddGate("sum", minflo.Xor2, a, b)
	carry := c.AddGate("carry", minflo.And2, a, b)
	c.MarkPO(sum)
	c.MarkPO(carry)

	out, err := c.Evaluate([]bool{true, true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1+1: sum=%v carry=%v\n", out[0], out[1])
	// Output:
	// 1+1: sum=false carry=true
}

// ExampleSizer_Sweep produces a small area-delay curve (Figure 7 style).
func ExampleSizer_Sweep() {
	ckt := minflo.InverterChain(6)
	sz, err := minflo.NewSizer(nil)
	if err != nil {
		log.Fatal(err)
	}
	pts, err := sz.Sweep(ckt, []float64{1.0, 0.7})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range pts {
		fmt.Printf("%.1f feasible=%v tighter-or-equal=%v\n",
			pt.Frac, pt.Feasible, pt.MinfloRatio <= pt.TilosRatio+1e-12)
	}
	// Output:
	// 1.0 feasible=true tighter-or-equal=true
	// 0.7 feasible=true tighter-or-equal=true
}

// ExampleParseBench loads a netlist in the ISCAS85 .bench format.
func ExampleParseBench() {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
`
	ckt, err := minflo.ParseBench(strings.NewReader(src), "tiny")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d gate, %d inputs\n", ckt.NumGates(), ckt.NumPIs())
	// Output:
	// 1 gate, 2 inputs
}
