package minflo

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestShapeClaims verifies the paper's qualitative Table 1 claims on a
// quick subset: MINFLOTRANSIT never loses to TILOS, adders gain ≈0%,
// reconvergent control logic gains percent-level area, and the runtime
// stays within a small multiple of TILOS.
func TestShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sz, _ := NewSizer(nil)
	type result struct {
		name string
		row  *TableRow
	}
	var results []result
	for _, name := range []string{"adder32", "c432", "c499", "c880"} {
		ckt, err := CircuitByName(name)
		if err != nil {
			t.Fatal(err)
		}
		row, err := sz.RunTableRow(ckt, PaperSpec(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results = append(results, result{name, row})
		if row.SavingsPct < -1e-6 {
			t.Errorf("%s: MINFLOTRANSIT lost to TILOS by %.2f%%", name, -row.SavingsPct)
		}
		if row.Iterations > 100 {
			t.Errorf("%s: %d iterations (paper: at most ~100)", name, row.Iterations)
		}
	}
	byName := map[string]*TableRow{}
	for _, r := range results {
		byName[r.name] = r.row
	}
	if byName["adder32"].SavingsPct > 3 {
		t.Errorf("adder32 saving %.1f%% — paper reports ≤1%%", byName["adder32"].SavingsPct)
	}
	if byName["c432"].SavingsPct < 2 {
		t.Errorf("c432 saving %.1f%% — expected percent-level (paper: 9.4%%)", byName["c432"].SavingsPct)
	}
	if byName["c432"].SavingsPct < byName["adder32"].SavingsPct {
		t.Error("shape inverted: controller saves less than the adder")
	}
}

// TestParsedNetlistSizing sizes a circuit that went through the .bench
// writer and parser — the full I/O + optimization round trip.
func TestParsedNetlistSizing(t *testing.T) {
	orig, err := CircuitByName("c17")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBench(&buf, "c17rt")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := NewSizer(nil)
	dmin, err := sz.MinDelay(parsed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sz.Minflotransit(parsed, 0.5*dmin)
	if err != nil {
		t.Fatal(err)
	}
	if res.CP > 0.5*dmin*(1+1e-9) {
		t.Fatal("parsed netlist missed its target")
	}
}

// TestFailureInjection drives hostile inputs through the public API:
// everything must fail cleanly, never hang or panic.
func TestFailureInjection(t *testing.T) {
	sz, _ := NewSizer(nil)

	t.Run("cyclic netlist", func(t *testing.T) {
		src := "INPUT(a)\nOUTPUT(y)\ny = NAND(a, w)\nw = NAND(a, y)\n"
		if _, err := ParseBench(strings.NewReader(src), "cyc"); err == nil {
			t.Fatal("cycle accepted")
		}
	})
	t.Run("impossible target", func(t *testing.T) {
		ckt := InverterChain(6)
		if _, err := sz.Minflotransit(ckt, 1e-6); err == nil {
			t.Fatal("impossible target accepted")
		}
	})
	t.Run("zero spec table row", func(t *testing.T) {
		ckt := C17()
		if _, err := sz.RunTableRow(ckt, 0.0001); err == nil {
			t.Fatal("degenerate spec accepted")
		}
	})
	t.Run("unknown benchmark", func(t *testing.T) {
		if _, err := CircuitByName("c9999"); err == nil {
			t.Fatal("unknown benchmark accepted")
		}
	})
	t.Run("dangling gate netlist", func(t *testing.T) {
		c := NewCircuit("dangle")
		a := c.AddPI("a")
		g1 := c.AddGate("g1", Inv, a)
		c.AddGate("g2", Inv, a) // drives nothing
		c.MarkPO(g1)
		if _, err := sz.MinDelay(c); err == nil {
			t.Fatal("dangling gate accepted")
		}
	})
	t.Run("sweep with infeasible points", func(t *testing.T) {
		ckt := InverterChain(8)
		pts, err := sz.Sweep(ckt, []float64{0.05, 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if pts[0].Feasible {
			t.Fatal("0.05·Dmin reported feasible")
		}
		if !pts[1].Feasible {
			t.Fatal("1.0·Dmin reported infeasible")
		}
	})
}

// TestSizingDeterminism: the optimizer must be deterministic — same
// circuit, same target, same result.
func TestSizingDeterminism(t *testing.T) {
	sz, _ := NewSizer(nil)
	ckt := C17()
	dmin, _ := sz.MinDelay(ckt)
	a, err := sz.Minflotransit(ckt.Clone(), 0.5*dmin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sz.Minflotransit(ckt.Clone(), 0.5*dmin)
	if err != nil {
		t.Fatal(err)
	}
	if a.Area != b.Area || a.CP != b.CP || a.Iterations != b.Iterations {
		t.Fatalf("nondeterministic: (%g,%g,%d) vs (%g,%g,%d)",
			a.Area, a.CP, a.Iterations, b.Area, b.CP, b.Iterations)
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatalf("size %d differs", i)
		}
	}
}

// TestSizingPreservesLogic: optimization changes sizes, never function.
func TestSizingPreservesLogic(t *testing.T) {
	ckt := RippleAdder(6, FAXor)
	ref := ckt.Clone()
	sz, _ := NewSizer(nil)
	dmin, _ := sz.MinDelay(ckt)
	if _, err := sz.Minflotransit(ckt, 0.6*dmin); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 64; trial++ {
		in := make([]bool, ckt.NumPIs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		a, err := ckt.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ref.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("sizing changed circuit function")
			}
		}
	}
}

// TestPaperSpecTable sanity-checks the spec helper.
func TestPaperSpecTable(t *testing.T) {
	if PaperSpec("adder32") != 0.5 || PaperSpec("c499") != 0.57 || PaperSpec("c6288") != 0.4 {
		t.Fatal("paper specs wrong")
	}
	if _, ok := PaperSavings("c6288"); !ok {
		t.Fatal("missing paper savings entry")
	}
	if len(BenchmarkNames()) != 12 {
		t.Fatal("suite should list 12 circuits")
	}
	for _, n := range BenchmarkNames() {
		if _, err := CircuitByName(n); err != nil {
			t.Fatalf("suite member %s unbuildable: %v", n, err)
		}
	}
}

// TestWriteTableAndCurve covers the report formatting helpers.
func TestWriteTableAndCurve(t *testing.T) {
	var buf bytes.Buffer
	rows := []*TableRow{{
		Circuit: "c432s", Gates: 147, DelaySpec: 0.4, DminPS: 2803,
		TilosArea: 3167, MinfloArea: 2938, SavingsPct: 7.2,
	}}
	WriteTable(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "c432s") || !strings.Contains(out, "9.4") {
		t.Fatalf("table output missing fields:\n%s", out)
	}
	buf.Reset()
	WriteCurve(&buf, "x", []TradeoffPoint{
		{Frac: 0.5, Feasible: true, TilosRatio: 1.5, MinfloRatio: 1.4},
		{Frac: 0.3},
	})
	out = buf.String()
	if !strings.Contains(out, "infeasible") || !strings.Contains(out, "1.400") {
		t.Fatalf("curve output wrong:\n%s", out)
	}
}

// TestThreeOptimizerOrdering: on the same instance, MINFLOTRANSIT must
// beat or match both baselines, and every optimizer must meet timing.
func TestThreeOptimizerOrdering(t *testing.T) {
	sz, _ := NewSizer(nil)
	ckt, err := CircuitByName("c432")
	if err != nil {
		t.Fatal(err)
	}
	dmin, _ := sz.MinDelay(ckt)
	T := 0.45 * dmin

	tl, err := sz.TILOS(ckt.Clone(), T)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := sz.LagrangianRelaxation(ckt.Clone(), T)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := sz.Minflotransit(ckt.Clone(), T)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Sizing{"tilos": tl, "lagrangian": lr, "minflo": mf} {
		if s.CP > T*(1+1e-9) {
			t.Errorf("%s missed timing: %g > %g", name, s.CP, T)
		}
	}
	if mf.Area > tl.Area*(1+1e-9) {
		t.Errorf("MINFLO %g worse than TILOS %g", mf.Area, tl.Area)
	}
	t.Logf("TILOS %.1f | LR %.1f | MINFLO %.1f", tl.Area, lr.Area, mf.Area)
}

// TestTimingReportOutput exercises the public report path.
func TestTimingReportOutput(t *testing.T) {
	sz, _ := NewSizer(nil)
	ckt := C17()
	dmin, _ := sz.MinDelay(ckt)
	if _, err := sz.Minflotransit(ckt, 0.6*dmin); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sz.TimingReport(&buf, ckt, 0.6*dmin); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"critical path:", "met", "slack histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
