// Benchmark harness regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`; see EXPERIMENTS.md
// for the recorded results and the paper-vs-measured comparison).
//
//   - BenchmarkTable1/<circuit>   — one op = TILOS + MINFLOTRANSIT at the
//     row's delay spec; reported metrics: area saving %, both areas,
//     iteration count, and the TILOS-relative runtime.
//   - BenchmarkFigure7C432 / C6288 — one op = both optimizers across the
//     full delay sweep of one Figure 7 panel.
//   - BenchmarkScalingAdder/<bits> — §3 run-time growth claim.
//   - BenchmarkAblation*           — design-choice sweeps from DESIGN.md §5.
//   - BenchmarkMCMF / BenchmarkSTA — substrate micro-benchmarks.
package minflo

import (
	"fmt"
	"testing"

	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/lin"
	"minflo/internal/mcmf"
	"minflo/internal/smp"
	"minflo/internal/sta"
	"minflo/internal/tech"
	"minflo/internal/tilos"
)

// runRow executes one Table-1 row and reports custom metrics.
func runRow(b *testing.B, name string, spec float64) {
	b.Helper()
	ckt, err := CircuitByName(name)
	if err != nil {
		b.Fatal(err)
	}
	sz, err := NewSizer(nil)
	if err != nil {
		b.Fatal(err)
	}
	var last *TableRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := sz.RunTableRow(ckt, spec)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.StopTimer()
	b.ReportMetric(last.SavingsPct, "saved%")
	b.ReportMetric(last.MinfloArea, "area")
	b.ReportMetric(last.TilosArea, "tilosArea")
	b.ReportMetric(float64(last.Iterations), "iters")
	b.ReportMetric(last.AreaRatio, "areaRatio")
	tot := last.TilosTime + last.MinfloExtra
	b.ReportMetric(float64(tot)/float64(last.TilosTime), "t/tTILOS")
}

// BenchmarkTable1 reproduces every row of Table 1 at the paper's specs.
func BenchmarkTable1(b *testing.B) {
	for _, name := range BenchmarkNames() {
		name := name
		b.Run(name, func(b *testing.B) { runRow(b, name, PaperSpec(name)) })
	}
}

// figure7 sweeps one panel of Figure 7.
func figure7(b *testing.B, circuit string) {
	ckt, err := CircuitByName(circuit)
	if err != nil {
		b.Fatal(err)
	}
	sz, _ := NewSizer(nil)
	fracs := []float64{0.40, 0.50, 0.60, 0.80, 1.00}
	var pts []TradeoffPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err = sz.Sweep(ckt, fracs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Report the steep-end gap (the paper highlights 14.2% for c6288 at
	// 0.5·Dmin) and the curve integral difference.
	for _, pt := range pts {
		if pt.Feasible && pt.Frac == 0.50 {
			b.ReportMetric(100*(1-pt.MinfloRatio/pt.TilosRatio), "saved%@0.5")
		}
	}
}

// BenchmarkFigure7C432 regenerates the left panel of Figure 7.
func BenchmarkFigure7C432(b *testing.B) { figure7(b, "c432") }

// BenchmarkFigure7C6288 regenerates the right panel of Figure 7.
func BenchmarkFigure7C6288(b *testing.B) { figure7(b, "c6288") }

// BenchmarkScalingAdder measures run-time growth across adder widths
// (§3: near-linear dependence on circuit size, MINFLOTRANSIT within a
// small multiple of TILOS).
func BenchmarkScalingAdder(b *testing.B) {
	for _, bits := range []int{16, 32, 64, 128} {
		bits := bits
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) {
			runRow(b, fmt.Sprintf("adder%d", bits), 0.5)
		})
	}
}

// BenchmarkScalingLarge runs the generated large-circuit suite —
// deep meshes and wide trees from 8k to 102k gates — end-to-end
// (TILOS + MINFLOTRANSIT at 0.9·Dmin), the §3 run-time-growth claim
// well beyond ISCAS85 sizes.  One full pass takes about a minute; run
// it explicitly (it is excluded from the default snapshot regex).
func BenchmarkScalingLarge(b *testing.B) {
	cases := []struct {
		name string
		mk   func() *Circuit
	}{
		{"mesh10k", func() *Circuit { return gen.Mesh(100, 100) }},
		{"mesh20k", func() *Circuit { return gen.Mesh(140, 140) }},
		{"mesh31k", func() *Circuit { return gen.Mesh(175, 175) }},
		{"mesh102k", func() *Circuit { return gen.Mesh(320, 320) }},
		{"tree8k", func() *Circuit { return gen.BalancedTree(1 << 13) }},
		{"tree16k", func() *Circuit { return gen.BalancedTree(1 << 14) }},
		{"tree33k", func() *Circuit { return gen.BalancedTree(1 << 15) }},
	}
	m := delay.NewModel(tech.Default013())
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			p, err := dag.GateLevel(tc.mk(), m)
			if err != nil {
				b.Fatal(err)
			}
			tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
			if err != nil {
				b.Fatal(err)
			}
			T := 0.9 * tm.CP
			var last *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = core.Size(p, T, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(p.NumSizable), "gates")
			b.ReportMetric(float64(last.Iterations), "iters")
			b.ReportMetric(100*(1-last.Area/last.TilosArea), "saved%")
		})
	}
}

// BenchmarkAblationWindow sweeps the D-phase budget window η: small
// windows track the Taylor model faithfully but converge slowly; large
// windows overshoot (DESIGN.md §3.1).
func BenchmarkAblationWindow(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	T := 0.4 * tm.CP
	for _, window := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
		window := window
		b.Run(fmt.Sprintf("eta%.2f", window), func(b *testing.B) {
			var last *core.Result
			for i := 0; i < b.N; i++ {
				r, err := core.Size(p, T, core.Options{Window: window})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(100*(1-last.Area/last.TilosArea), "saved%")
			b.ReportMetric(float64(last.Iterations), "iters")
		})
	}
}

// BenchmarkAblationBump sweeps the TILOS bump factor: the paper uses
// 1.1; coarser bumps give worse starting points that MINFLOTRANSIT must
// recover from.
func BenchmarkAblationBump(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	T := 0.4 * tm.CP
	for _, bump := range []float64{1.05, 1.1, 1.2, 1.5} {
		bump := bump
		b.Run(fmt.Sprintf("bump%.2f", bump), func(b *testing.B) {
			var last *core.Result
			for i := 0; i < b.N; i++ {
				r, err := core.Size(p, T, core.Options{Tilos: tilos.Options{Bump: bump}})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(100*(1-last.Area/last.TilosArea), "saved%")
			b.ReportMetric(last.Area, "area")
			b.ReportMetric(last.TilosArea, "tilosArea")
		})
	}
}

// BenchmarkAblationScale sweeps the D-phase integerization scale (the
// paper: "by choosing appropriate powers of 10 arbitrary accuracy can
// be maintained with almost no penalty").
func BenchmarkAblationScale(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	T := 0.4 * tm.CP
	for _, scale := range []float64{1e3, 1e4, 1e6, 1e8} {
		scale := scale
		b.Run(fmt.Sprintf("scale1e%.0f", logTen(scale)), func(b *testing.B) {
			var last *core.Result
			for i := 0; i < b.N; i++ {
				r, err := core.Size(p, T, core.Options{CostScale: scale})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(100*(1-last.Area/last.TilosArea), "saved%")
		})
	}
}

func logTen(x float64) float64 {
	n := 0.0
	for x >= 10 {
		x /= 10
		n++
	}
	return n
}

// BenchmarkTransistorLevel sizes c17 on the per-transistor DAG — the
// general problem of paper §2.1 (Table 1 itself is gate sizing).
func BenchmarkTransistorLevel(b *testing.B) {
	sz, _ := NewSizer(nil)
	ckt := C17()
	dmin, err := sz.TransistorMinDelay(ckt)
	if err != nil {
		b.Fatal(err)
	}
	var last *DeviceSizing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = sz.MinflotransitTransistors(ckt, 0.55*dmin)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(100*(1-last.Area/last.TilosArea), "saved%")
}

// BenchmarkWireSizing runs joint gate+wire sizing (paper §2.1).
func BenchmarkWireSizing(b *testing.B) {
	sz, _ := NewSizer(nil)
	ckt := RippleAdder(8, FAXor)
	wp := DefaultWireParams()
	dmin, err := sz.WiredMinDelay(ckt, wp)
	if err != nil {
		b.Fatal(err)
	}
	var last *WireSizing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = sz.MinflotransitWithWires(ckt, 0.55*dmin, wp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(100*(1-last.Area/last.TilosArea), "saved%")
}

// BenchmarkMCMF measures the min-cost-flow substrate on a
// D-phase-shaped layered instance (mcmf.NewGridInstance, 1000 nodes /
// ~4900 arcs).  "fresh" builds the network and solves, one op per
// build — the per-problem cost.  "warm" re-solves one network through
// the Reset warm-start path — the per-iteration cost of the D/W loop,
// which must be allocation-free (internal/mcmf TestWarmResolveAllocFree
// asserts 0 allocs).  These rows anchor the BENCH_*.json perf
// trajectory (cmd/mkbench -snapshot; see EXPERIMENTS.md).
func BenchmarkMCMF(b *testing.B) {
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := mcmf.NewGridInstance(40, 25, 7)
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := mcmf.NewGridInstance(40, 25, 7)
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSTA measures the timing-analysis substrate on the largest
// suite circuit.
func BenchmarkSTA(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C7552(), m)
	if err != nil {
		b.Fatal(err)
	}
	x := p.InitialSizes()
	d := p.Delays(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(p.G, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPhase isolates one D-phase round (balance + sensitivities +
// min-cost-flow dual) on c432 — the paper's headline machinery.
func BenchmarkDPhase(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	T := 0.4 * tm.CP
	tr, err := tilos.Size(p, T, nil, tilos.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full D+W iteration from the TILOS point.
		if _, err := core.Size(p, T, core.Options{MaxIters: 1, Tilos: tilos.Options{}}); err != nil {
			b.Fatal(err)
		}
	}
	_ = tr
}

// BenchmarkWPhase isolates one W-phase round — an SMP solve for fresh
// budgets plus the area-sensitivity computation the next D-phase needs
// (companion to BenchmarkDPhase) — on c432 at a TILOS starting point.
func BenchmarkWPhase(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.C432(), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	T := 0.4 * tm.CP
	tr, err := tilos.Size(p, T, nil, tilos.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// Budgets: the per-vertex delays of the TILOS solution (a feasible
	// budget vector by construction).
	d := p.Delays(tr.X)[:p.NumSizable]
	for i := range d {
		d[i] *= 1.0000001 // strictly above intrinsic for the solvers
	}
	// The optimizer's per-problem setup: persistent solvers over the
	// shared CSR, scratch reused across rounds.
	ws := smp.NewSolver(p.CSR())
	ls := lin.NewSolver(p.CSR())
	x := make([]float64, p.NumSizable)
	sens := make([]float64, p.NumSizable)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := ws.SolveInto(x, d, p.MinSize, p.MaxSize, smp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ls.SensitivitiesInto(sens, w.X, d, p.AreaW); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVsLagrangian compares MINFLOTRANSIT against the
// Lagrangian-relaxation optimizer of the paper's reference [8] — the
// exact-method competitor discussed in §1.
func BenchmarkVsLagrangian(b *testing.B) {
	sz, _ := NewSizer(nil)
	ckt, err := CircuitByName("c432")
	if err != nil {
		b.Fatal(err)
	}
	dmin, err := sz.MinDelay(ckt)
	if err != nil {
		b.Fatal(err)
	}
	T := 0.4 * dmin
	b.Run("minflotransit", func(b *testing.B) {
		var last *Sizing
		for i := 0; i < b.N; i++ {
			last, err = sz.Minflotransit(ckt.Clone(), T)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(last.Area, "area")
	})
	b.Run("lagrangian", func(b *testing.B) {
		var last *Sizing
		for i := 0; i < b.N; i++ {
			last, err = sz.LagrangianRelaxation(ckt.Clone(), T)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(last.Area, "area")
	})
}
