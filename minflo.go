// Package minflo is a from-scratch Go implementation of MINFLOTRANSIT,
// the min-cost-flow based transistor/gate sizing tool of Sundararajan,
// Sapatnekar and Parhi (DAC 2000), together with every substrate the
// paper depends on: circuit netlists, an Elmore delay model in simple
// monotonic decomposition, static timing analysis, delay balancing with
// FSDU displacement, a min-cost network-flow solver, a simple monotonic
// program solver, and the TILOS baseline.
//
// # Quick start
//
//	ckt := minflo.RippleAdder(32, minflo.FABuffered)
//	sz, _ := minflo.NewSizer(nil)
//	dmin, _ := sz.MinDelay(ckt)
//	res, _ := sz.Minflotransit(ckt, 0.5*dmin)
//	fmt.Printf("area %.0f at CP %.0f ps\n", res.Area, res.CP)
//
// The experiments of the paper (Table 1 and Figure 7) are regenerated
// by cmd/experiments and the benchmarks in bench_test.go.
//
// # Serving
//
// For repeated queries against one circuit — target sweeps, what-if
// cost changes — cmd/minflod runs a hardened HTTP/JSON daemon that
// keeps solver sessions warm between requests, with admission control
// (429 + Retry-After), per-request deadline and flow-work budgets,
// byte-accounted LRU eviction, panic quarantine and graceful drain.
// Small target refinements are answered from the session's previous
// converged sizing via a trust-region policy (-trust-region, default
// 5%), several times faster than a cold solve; the response's "seed"
// field says which path answered, and identical concurrent queries
// coalesce onto one solve ("coalesced": true).  Netlist edits (ECOs —
// extra loads, cell swaps, fanout rewires) stream through the same
// session via POST /v1/sessions/{id}/edit: value edits patch the
// resident coupling rows in place and repair arrivals over the edit's
// timing cone, rewires rebuild the solver state, and every batch is
// atomic — a rejected batch (or a query rejected for bad what-if
// weights) leaves the session bit-identical to never having received
// it.  internal/serve documents the endpoints, error codes and the
// replay-determinism contract ("deterministic given session history",
// edit batches included); a retrying client lives in the same
// package, and examples/service and examples/eco are runnable
// walkthroughs.
package minflo

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"minflo/internal/bench"
	"minflo/internal/cell"
	"minflo/internal/circuit"
	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/mcmf"
	"minflo/internal/sta"
	"minflo/internal/tech"
	"minflo/internal/tilos"
)

// Re-exported circuit-construction types: the netlist model lives in an
// internal package; these aliases are the public surface.
type (
	// Circuit is a combinational netlist of library cells.
	Circuit = circuit.Circuit
	// Ref identifies a signal driver (primary input or gate output).
	Ref = circuit.Ref
	// CellKind selects a library cell.
	CellKind = cell.Kind
	// TechParams describes the process technology.
	TechParams = tech.Params
	// FAStyle selects full-adder decompositions in the generators.
	FAStyle = gen.FAStyle
)

// Library cells available to AddGate.
const (
	Inv   = cell.Inv
	Buf   = cell.Buf
	Nand2 = cell.Nand2
	Nand3 = cell.Nand3
	Nand4 = cell.Nand4
	Nor2  = cell.Nor2
	Nor3  = cell.Nor3
	Nor4  = cell.Nor4
	And2  = cell.And2
	And3  = cell.And3
	And4  = cell.And4
	Or2   = cell.Or2
	Or3   = cell.Or3
	Or4   = cell.Or4
	Xor2  = cell.Xor2
	Xnor2 = cell.Xnor2
	Aoi21 = cell.Aoi21
	Oai21 = cell.Oai21
)

// Full-adder styles for the generators.
const (
	FAXor      = gen.FAXor
	FANand     = gen.FANand
	FABuffered = gen.FABuffered
)

// NewCircuit returns an empty netlist.
func NewCircuit(name string) *Circuit { return circuit.New(name) }

// Default013 returns the default 0.13 µm-class technology parameters.
func Default013() TechParams { return tech.Default013() }

// ParseBench reads an ISCAS85 .bench netlist.  Malformed input
// returns a wrapped *bench.ParseError (with line information), never
// a panic — the parser is fuzzed on arbitrary bytes.
func ParseBench(r io.Reader, name string) (*Circuit, error) {
	c, err := bench.Parse(r, name)
	if err != nil {
		return nil, fmt.Errorf("minflo: parse %s: %w", name, err)
	}
	return c, nil
}

// WriteBench writes the circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// Generators (see internal/gen for the substitution rationale).
var (
	// C17 is the six-NAND ISCAS c17 circuit.
	C17 = gen.C17
	// InverterChain builds an n-inverter chain.
	InverterChain = gen.InverterChain
	// RippleAdder builds a ripple-carry adder (the paper's adder32/256
	// rows use FABuffered).
	RippleAdder = gen.RippleAdder
	// ArrayMultiplier builds an n×n array multiplier (c6288 class).
	ArrayMultiplier = gen.ArrayMultiplier
	// Fork is the paper's Example 1 circuit.
	Fork = gen.Fork
	// Mesh builds a rows×cols NAND grid (deep scaling workload).
	Mesh = gen.Mesh
	// BalancedTree builds a binary NAND tree (shallow scaling workload).
	BalancedTree = gen.BalancedTree
	// Suite returns the full Table 1 benchmark list.
	Suite = gen.Suite
	// RandomLogic builds a random DAG (property-test workload).
	RandomLogic = gen.RandomLogic
)

// ErrInfeasible is returned when no sizing can meet the delay target.
var ErrInfeasible = errors.New("minflo: delay target unreachable")

// Abort taxonomy for MinflotransitCtx (aliased from the optimizer so
// errors.Is works at every layer): runs cut short by cancellation or
// an exhausted budget return these alongside a best-so-far Sizing
// marked Partial.
var (
	// ErrCanceled reports a canceled context.
	ErrCanceled = core.ErrCanceled
	// ErrBudgetExhausted reports an exhausted Config.Budget or
	// Config.FlowWorkBudget.
	ErrBudgetExhausted = core.ErrBudgetExhausted
	// ErrEngineFailed wraps a flow-engine failure the ssp fallback
	// chain could not recover.
	ErrEngineFailed = core.ErrEngineFailed
)

// Config parameterizes a Sizer. The zero value (or nil pointer) uses
// the defaults from the paper's experimental setup.
type Config struct {
	// Tech selects process parameters (default Default013).
	Tech TechParams
	// POLoad is the capacitance on every primary output in fF
	// (default 8 unit gate caps).
	POLoad float64
	// TilosBump is TILOS's upsizing factor (default 1.1, paper §3).
	TilosBump float64
	// Window is the D-phase budget window η (default 0.3).
	Window float64
	// MaxIters bounds MINFLOTRANSIT iterations (default 100).
	MaxIters int
	// CostScale integerizes D-phase arc costs (default 1e6).
	CostScale float64
	// FlowEngine selects the D-phase min-cost-flow backend: "ssp"
	// (successive shortest paths, heap Dijkstra), "dial" (SSP with a
	// bucket-queue Dijkstra), "costscaling" (Goldberg–Tarjan, serial
	// discharge), "cspar" (bulk-synchronous parallel cost scaling,
	// bit-identical at every worker budget), "parallel" (speculative
	// concurrent SSP, bit-identical to "ssp"; opt-in, see
	// EXPERIMENTS.md "Intra-run parallelism"), or ""/"auto" to
	// calibrate per problem: the first D-phase solve times the
	// candidate engines and keeps the fastest (see FlowEngines and
	// EXPERIMENTS.md "Engine calibration").  The calibrated choice is
	// equally optimal whichever engine wins, but reruns on a noisy
	// host may follow a different — bitwise different — optimal
	// trajectory; pin an engine for exact reproducibility.  Applies
	// to every optimization the Sizer runs: Minflotransit, Sweep,
	// RunTable and the transistor/wire variants.
	FlowEngine string
	// Parallelism is the intra-run worker budget of a single
	// optimization: concurrent W-phase level sweeps, parallel
	// sensitivity solves, and the "parallel" flow backend when the
	// engine choice allows it.  0 defaults to GOMAXPROCS, 1 forces
	// serial runs.  Results are bit-identical at every setting (the
	// determinism suite pins parallel runs to their serial twins), so
	// this is purely a throughput knob.  Sweep and RunTable
	// parallelize across runs instead: their concurrent jobs run
	// serially inside when Parallelism is left at the default (the
	// job fan-out already saturates the machine), and honor an
	// explicit setting per job.
	Parallelism int
	// Budget, when positive, bounds the wall clock of each
	// optimization run: exceeding it returns the best sizing reached
	// so far as a partial result with ErrBudgetExhausted.
	Budget time.Duration
	// FlowWorkBudget, when positive, caps the cumulative D-phase
	// flow work (mcmf poll operations) of each run; see Budget for
	// the exhaustion behavior.
	FlowWorkBudget int64
}

// FlowEngines lists the selectable D-phase flow backends.
func FlowEngines() []string { return mcmf.EngineNames() }

// Sizer runs the optimizers over circuits with fixed technology
// parameters.
type Sizer struct {
	cfg   Config
	model *delay.Model
}

// NewSizer builds a Sizer; cfg may be nil for defaults.
func NewSizer(cfg *Config) (*Sizer, error) {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	if c.Tech == (TechParams{}) {
		c.Tech = tech.Default013()
	}
	if err := c.Tech.Validate(); err != nil {
		return nil, err
	}
	m := delay.NewModel(c.Tech)
	if c.POLoad > 0 {
		m.POLoad = c.POLoad
	}
	if c.TilosBump == 0 {
		c.TilosBump = 1.1
	}
	// Reject unknown engine names here rather than deep inside the
	// first optimization run.
	if _, err := core.ResolveFlowEngine(c.FlowEngine, 0, 1); err != nil {
		return nil, err
	}
	if c.Parallelism < 0 {
		return nil, fmt.Errorf("minflo: negative Parallelism %d", c.Parallelism)
	}
	return &Sizer{cfg: c, model: m}, nil
}

// Sizing is the outcome of an optimization run.
type Sizing struct {
	// Sizes, indexed by gate, in units of the minimum size.
	Sizes []float64
	// Area is Σ UnitArea·x (total transistor width).
	Area float64
	// CP is the critical-path delay in ps.
	CP float64
	// MinArea is the all-minimum-size area (for normalized reporting).
	MinArea float64
	// Iterations is the D/W iteration count (MINFLOTRANSIT only).
	Iterations int
	// TilosArea/TilosCP describe the initial TILOS solution
	// (MINFLOTRANSIT only).
	TilosArea float64
	TilosCP   float64
	// Partial marks a run cut short by cancellation or an exhausted
	// budget: Sizes/Area/CP hold the best feasible sizing reached
	// before the abort (see MinflotransitCtx).
	Partial bool
}

// problem builds the gate-sizing problem for the circuit.
func (s *Sizer) problem(c *Circuit) (*dag.Problem, error) {
	return dag.GateLevel(c, s.model)
}

// MinDelay returns Dmin: the critical-path delay of the circuit with
// every gate at minimum size.
func (s *Sizer) MinDelay(c *Circuit) (float64, error) {
	p, err := s.problem(c)
	if err != nil {
		return 0, err
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		return 0, err
	}
	return tm.CP, nil
}

// Delay returns the critical-path delay at the circuit's current sizes.
func (s *Sizer) Delay(c *Circuit) (float64, error) {
	p, err := s.problem(c)
	if err != nil {
		return 0, err
	}
	tm, err := sta.Analyze(p.G, p.Delays(c.Sizes()))
	if err != nil {
		return 0, err
	}
	return tm.CP, nil
}

// TILOS sizes the circuit with the baseline heuristic to meet target T
// (ps). The circuit's gate sizes are updated in place.
func (s *Sizer) TILOS(c *Circuit, T float64) (*Sizing, error) {
	p, err := s.problem(c)
	if err != nil {
		return nil, err
	}
	r, err := tilos.Size(p, T, nil, tilos.Options{Bump: s.cfg.TilosBump})
	if err != nil {
		if errors.Is(err, tilos.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	if err := p.ApplyToCircuit(c, r.X); err != nil {
		return nil, err
	}
	return &Sizing{
		Sizes:   r.X,
		Area:    r.Area,
		CP:      r.CP,
		MinArea: p.MinAreaValue(),
	}, nil
}

// Minflotransit sizes the circuit with the full two-phase optimizer to
// meet target T (ps). The circuit's gate sizes are updated in place.
func (s *Sizer) Minflotransit(c *Circuit, T float64) (*Sizing, error) {
	return s.MinflotransitCtx(context.Background(), c, T)
}

// MinflotransitCtx is Minflotransit with cancellation and budgets:
// the context (and the Config.Budget deadline) is polled between D/W
// iterations and inside the flow engines' augmentation loops, so even
// a solver stuck deep in one min-cost-flow solve stops promptly.  A
// run cut short still answers usefully when it can: the returned
// Sizing holds the best feasible sizing reached before the abort (the
// TILOS seed if no D/W iteration completed), is marked Partial, is
// applied to the circuit, and comes WITH the non-nil ErrCanceled /
// ErrBudgetExhausted error — callers must treat (sz != nil, err !=
// nil) as "partial answer", not success.  An abort before any sizing
// exists returns (nil, error) and leaves the circuit untouched.
func (s *Sizer) MinflotransitCtx(ctx context.Context, c *Circuit, T float64) (*Sizing, error) {
	p, err := s.problem(c)
	if err != nil {
		return nil, err
	}
	r, err := core.SizeCtx(ctx, p, T, s.coreOptions())
	if err != nil {
		if r != nil && r.Partial {
			// Best-so-far partial result: apply it so the circuit
			// reflects the answer, and hand both back.
			if aerr := p.ApplyToCircuit(c, r.X); aerr != nil {
				return nil, aerr
			}
			return &Sizing{
				Sizes:      r.X,
				Area:       r.Area,
				CP:         r.CP,
				MinArea:    p.MinAreaValue(),
				Iterations: r.Iterations,
				TilosArea:  r.TilosArea,
				TilosCP:    r.TilosCP,
				Partial:    true,
			}, err
		}
		if errors.Is(err, core.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	if err := p.ApplyToCircuit(c, r.X); err != nil {
		return nil, err
	}
	return &Sizing{
		Sizes:      r.X,
		Area:       r.Area,
		CP:         r.CP,
		MinArea:    p.MinAreaValue(),
		Iterations: r.Iterations,
		TilosArea:  r.TilosArea,
		TilosCP:    r.TilosCP,
	}, nil
}

func (s *Sizer) coreOptions() core.Options {
	return core.Options{
		Window:         s.cfg.Window,
		MaxIters:       s.cfg.MaxIters,
		CostScale:      s.cfg.CostScale,
		FlowEngine:     s.cfg.FlowEngine,
		Parallelism:    s.cfg.Parallelism,
		Budget:         s.cfg.Budget,
		FlowWorkBudget: s.cfg.FlowWorkBudget,
		Tilos:          tilos.Options{Bump: s.cfg.TilosBump},
	}
}
