// Benchmarks for the intra-run parallelism work (PR 4): the
// speculative "parallel" flow backend, the level-parallel W-phase,
// and an end-to-end parallel core.Size.  Recorded in
// BENCH_<date>_parallel.json and gated in CI like the serial suites.
//
// Worker budgets are explicit (j1/j2/j4) rather than GOMAXPROCS so
// the benchmark names — and therefore the regression baselines — mean
// the same thing on every machine.  On a single-core host the j>1
// variants measure speculation overhead, not speedup; see
// EXPERIMENTS.md "Intra-run parallelism".
package minflo

import (
	"fmt"
	"testing"

	"minflo/internal/core"
	"minflo/internal/dag"
	"minflo/internal/delay"
	"minflo/internal/gen"
	"minflo/internal/lin"
	"minflo/internal/mcmf"
	"minflo/internal/par"
	"minflo/internal/smp"
	"minflo/internal/sta"
	"minflo/internal/tech"
	"minflo/internal/tilos"
)

// BenchmarkParallelFlow measures the "parallel" flow engine against
// its serial twin on the D-phase grid shape: one op = a fresh solve
// (every supply routed through speculation rounds).
func BenchmarkParallelFlow(b *testing.B) {
	for _, j := range []int{1, 2, 4} {
		j := j
		b.Run(fmt.Sprintf("grid80x50/j%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := mcmf.NewGridInstance(80, 50, 7)
				s.SetParallelism(j)
				if err := s.SetEngine("parallel"); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelWPhase measures the level-parallel W-phase sweep
// plus sensitivity solve on a wide balanced tree (4096-block levels),
// the shape where level parallelism has real fan-out.
func BenchmarkParallelWPhase(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.BalancedTree(1<<13), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := tilos.Size(p, 0.9*tm.CP, nil, tilos.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := p.Delays(tr.X)[:p.NumSizable]
	for i := range d {
		d[i] *= 1.0000001
	}
	for _, j := range []int{1, 2, 4} {
		j := j
		b.Run(fmt.Sprintf("tree8k/j%d", j), func(b *testing.B) {
			pool := par.New(j)
			defer pool.Close()
			ws := smp.NewSolver(p.CSR())
			ls := lin.NewSolver(p.CSR())
			ws.SetParallel(pool)
			ls.SetParallel(pool)
			x := make([]float64, p.NumSizable)
			sens := make([]float64, p.NumSizable)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := ws.SolveInto(x, d, p.MinSize, p.MaxSize, smp.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if err := ls.SensitivitiesInto(sens, w.X, d, p.AreaW); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSize is the end-to-end acceptance benchmark at a
// CI-friendly size: one op = a full core.Size (TILOS + D/W iteration)
// on the 10k-gate mesh, serial versus a 4-worker budget.  The
// full-scale mesh102k run lives in BenchmarkScalingLarge (excluded
// from CI); both are recorded in the parallel snapshot.  The flow
// engine is pinned to "dial" so the rows measure the intra-run
// parallel machinery, not the auto policy's per-run calibration probe
// (which times candidate engines and would add probe noise to a gated
// benchmark).
func BenchmarkParallelSize(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.Mesh(100, 100), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		b.Fatal(err)
	}
	T := 0.9 * tm.CP
	for _, j := range []int{1, 4} {
		j := j
		b.Run(fmt.Sprintf("mesh10k/j%d", j), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Size(p, T, core.Options{FlowEngine: "dial", Parallelism: j}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingParallel is the full-scale end-to-end run of the
// acceptance criterion: mesh102k through core.Size, serial versus a
// 4-worker budget (dial D-phase pinned + level-parallel W-phase;
// see BenchmarkParallelSize on why the calibration probe is not
// benchmarked).  Excluded from the CI gate like BenchmarkScalingLarge;
// recorded in BENCH_<date>_parallel.json.
func BenchmarkScalingParallel(b *testing.B) {
	m := delay.NewModel(tech.Default013())
	p, err := dag.GateLevel(gen.Mesh(320, 320), m)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := sta.Analyze(p.G, p.Delays(p.InitialSizes()))
	if err != nil {
		b.Fatal(err)
	}
	T := 0.9 * tm.CP
	for _, j := range []int{1, 4} {
		j := j
		b.Run(fmt.Sprintf("mesh102k/j%d", j), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Size(p, T, core.Options{FlowEngine: "dial", Parallelism: j}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
