module minflo

go 1.24
