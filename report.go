package minflo

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"minflo/internal/gen"
)

// BenchmarkNames lists the circuits of the Table 1 suite in paper order.
func BenchmarkNames() []string {
	return []string{
		"adder32", "adder256", "c432", "c499", "c880", "c1355",
		"c1908", "c2670", "c3540", "c5315", "c6288", "c7552",
	}
}

// CircuitByName builds a benchmark circuit by its Table 1 name
// (synthetic stand-ins for the ISCAS85 entries; see DESIGN.md §4),
// plus the extras "c17", "chainN", "adderN", "multN".
func CircuitByName(name string) (*Circuit, error) {
	switch strings.ToLower(name) {
	case "adder32":
		return gen.RippleAdder(32, gen.FABuffered), nil
	case "adder256":
		return gen.RippleAdder(256, gen.FABuffered), nil
	case "c17":
		return gen.C17(), nil
	case "c432", "c432s":
		return gen.C432(), nil
	case "c499", "c499s":
		return gen.C499(), nil
	case "c880", "c880s":
		return gen.C880(), nil
	case "c1355", "c1355s":
		return gen.C1355(), nil
	case "c1908", "c1908s":
		return gen.C1908(), nil
	case "c2670", "c2670s":
		return gen.C2670(), nil
	case "c3540", "c3540s":
		return gen.C3540(), nil
	case "c5315", "c5315s":
		return gen.C5315(), nil
	case "c6288", "c6288s", "mult16":
		return gen.C6288(), nil
	case "c7552", "c7552s":
		return gen.C7552(), nil
	}
	var n int
	if _, err := fmt.Sscanf(strings.ToLower(name), "adder%d", &n); err == nil && n > 0 {
		return gen.RippleAdder(n, gen.FABuffered), nil
	}
	if _, err := fmt.Sscanf(strings.ToLower(name), "mult%d", &n); err == nil && n > 1 {
		return gen.ArrayMultiplier(n), nil
	}
	if _, err := fmt.Sscanf(strings.ToLower(name), "chain%d", &n); err == nil && n > 0 {
		return gen.InverterChain(n), nil
	}
	return nil, fmt.Errorf("minflo: unknown benchmark %q (try one of %s, c17, adderN, multN, chainN)",
		name, strings.Join(BenchmarkNames(), ", "))
}

// PaperSpec returns the delay spec (fraction of Dmin) Table 1 uses for
// the named benchmark.
func PaperSpec(name string) float64 {
	switch strings.ToLower(name) {
	case "adder32", "adder256":
		return 0.5
	case "c499":
		return 0.57
	default:
		return 0.4
	}
}

// PaperSavings returns the paper's reported area saving (percent) for
// the named benchmark — used by EXPERIMENTS.md style comparisons.
func PaperSavings(name string) (float64, bool) {
	v, ok := map[string]float64{
		"adder32":  1.0, // "≤ 1%"
		"adder256": 1.0,
		"c432":     9.4,
		"c499":     7.2,
		"c880":     4.0,
		"c1355":    9.5,
		"c1908":    4.6,
		"c2670":    9.1,
		"c3540":    7.7,
		"c5315":    2.0,
		"c6288":    16.5,
		"c7552":    3.3,
	}[strings.ToLower(name)]
	return v, ok
}

// WriteTable formats Table-1 rows as an aligned text table.
func WriteTable(w io.Writer, rows []*TableRow) {
	fmt.Fprintf(w, "%-10s %7s %6s %9s %11s %11s %8s %9s %10s %6s\n",
		"circuit", "gates", "spec", "Dmin(ps)", "TILOS area", "MINFLO area",
		"saved%", "paper%", "t(TILOS)", "iters")
	for _, r := range rows {
		paper := "-"
		if v, ok := PaperSavings(strings.TrimSuffix(r.Circuit, "s")); ok {
			paper = fmt.Sprintf("%.1f", v)
		}
		fmt.Fprintf(w, "%-10s %7d %6.2f %9.0f %11.0f %11.0f %8.1f %9s %10s %6d\n",
			r.Circuit, r.Gates, r.DelaySpec, r.DminPS, r.TilosArea, r.MinfloArea,
			r.SavingsPct, paper, r.TilosTime.Round(1e6), r.Iterations)
	}
}

// WriteCurve formats Figure-7 style sweep points as aligned columns.
func WriteCurve(w io.Writer, name string, pts []TradeoffPoint) {
	fmt.Fprintf(w, "# %s — area ratio vs delay ratio (Figure 7)\n", name)
	fmt.Fprintf(w, "%8s %12s %12s\n", "T/Dmin", "TILOS", "MINFLO")
	sorted := append([]TradeoffPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Frac < sorted[j].Frac })
	for _, pt := range sorted {
		if !pt.Feasible {
			fmt.Fprintf(w, "%8.2f %12s %12s\n", pt.Frac, "infeasible", "infeasible")
			continue
		}
		fmt.Fprintf(w, "%8.2f %12.3f %12.3f\n", pt.Frac, pt.TilosRatio, pt.MinfloRatio)
	}
}
